// Modifier process and server-driven invalidation fan-out: the write path
// of the invalidation protocol (Section 3.3), its serialized/decoupled and
// multicast send variants (Section 5.3), and the crash-recovery broadcast
// (Section 4). Whether a write owes a fan-out at all is the kernel's
// OnWrite decision; everything here is mechanism.
#include <algorithm>

#include "http/cache_key.h"
#include "obs/event.h"
#include "replay/engine_impl.h"

namespace webcc::replay::detail {

void Engine::ModifierStep() {
  if (mod_cursor_ >= mod_window_end_) {
    ParticipantDone();
    return;
  }
  const trace::ModEvent& event = modifications_[mod_cursor_++];
  const std::string& url = DocPath(event.doc);

  // The touch registers in the file system immediately; for polling, this is
  // the point at which the write is complete. For invalidation the write is
  // in progress from this instant until the fan-out is delivered.
  docs_.Touch(url, event.at);
  mod_times_[url].push_back(event.at);
  mod_log_.Record(event.at, url);
  ++metrics_.modifications_applied;
  obs::Emit(sink_, {.type = obs::EventType::kModification,
                    .at = sim_.now(),
                    .trace_time = event.at,
                    .url = url});
  const bool fan_out = policy_->OnWrite().fan_out_invalidations;
  if (fan_out && !server_down_) ++writes_in_progress_[url];

  if (server_down_) {
    // The accelerator is dead: the modification goes unnoticed until the
    // recovery broadcast. The touch itself persists (the file system
    // survives the crash).
    sim_.After(0, [this] { ModifierStep(); });
    return;
  }

  // The check-in utility notifies the accelerator; detection happens when
  // the notify is processed.
  server_cpu_.Enqueue(config_.server_costs.notify_cpu,
                      [this, fan_out, url, at = event.at] {
                        if (fan_out) {
                          net::Notify notify{url};
                          FanOutInvalidations(accel_.HandleNotify(notify, at),
                                              url, at,
                                              [this] { ModifierStep(); });
                        } else {
                          ModifierStep();
                        }
                      });
}

void Engine::FanOutInvalidations(std::vector<net::Invalidation> invalidations,
                                 const std::string& url, Time trace_time,
                                 std::function<void()> on_complete) {
  WEBCC_CHECK(static_cast<bool>(on_complete));
  if (invalidations.empty()) {
    // No site holds a live-leased copy: the write is trivially complete.
    ++metrics_.write_completions;
    metrics_.write_completion_wall_ms.Record(0.0);
    metrics_.write_blocked_trace_ms.Record(0.0);
    obs::Emit(sink_,
              {.type = obs::EventType::kWriteComplete,
               .at = sim_.now(),
               .trace_time = trace_time,
               .url = url,
               .detail = static_cast<std::int64_t>(
                   obs::WriteCompleteKind::kNoTargets)});
    CompleteWrite(url);
    sim_.After(0, std::move(on_complete));
    return;
  }

  const std::uint64_t mod_id = next_mod_id_++;
  PendingMod& pending = pending_mod_targets_[mod_id];
  pending.delivery.set_url(url);
  pending.started_trace = trace_time;
  pending.started_wall = sim_.now();
  for (const net::Invalidation& invalidation : invalidations) {
    pending.delivery.AddTarget(invalidation.client_id,
                               invalidation.lease_until);
  }
  pending.first_pending = static_cast<int>(invalidations.size());
  if (config_.serialized_invalidation) {
    // The check-in blocks until the fan-out lands (the paper's prototype);
    // the modifier resumes only once this write has completed.
    pending.on_complete = std::move(on_complete);
  }

  // All of one modification's invalidations carry the same URL, so they
  // route to one shard: its sender in decoupled mode, the shared server
  // CPU when serialized (the paper's prototype, shard-count invariant).
  const std::uint32_t shard = accel_.ShardOf(url);
  sim::FifoStation& sender = config_.serialized_invalidation
                                 ? server_cpu_
                                 : *inval_senders_[shard];
  const Time fanout_start = sim_.now();
  Time last_send_done = fanout_start;
  if (config_.multicast_invalidation) {
    // One group send regardless of list length: one CPU charge, one
    // message's bytes; the network fans the copies out.
    ++metrics_.multicast_sends;
    metrics_.invalidations_sent += invalidations.size();
    metrics_.message_bytes += net::WireSize(invalidations.front());
    last_send_done = sender.Enqueue(
        config_.server_costs.invalidation_send_cpu,
        [this, invalidations = std::move(invalidations), mod_id]() mutable {
          for (net::Invalidation& invalidation : invalidations) {
            SendInvalidation(std::move(invalidation), mod_id);
          }
        });
    metrics_.invalidation_time_ms.Record(
        ToMillis(last_send_done - fanout_start));
  } else if (BatchingEnabled()) {
    // Queue into the shard's outbox; the armed drain packs everything
    // pending per site into one INVB frame after the batch window. Wire
    // bytes are charged at drain time (per frame, the batching win);
    // batch_flush_ms replaces invalidation_time_ms as the push-delay stat.
    for (const net::Invalidation& invalidation : invalidations) {
      ++metrics_.invalidations_sent;
      if (outboxes_[shard].Add(invalidation.client_id, url, mod_id,
                               fanout_start)) {
        ++metrics_.invalidations_coalesced;
      }
    }
    ScheduleOutboxDrain(shard, config_.invalidation_batch_window);
  } else {
    for (net::Invalidation& invalidation : invalidations) {
      ++metrics_.invalidations_sent;
      metrics_.message_bytes += net::WireSize(invalidation);
      last_send_done = sender.Enqueue(
          config_.server_costs.invalidation_send_cpu,
          [this, invalidation = std::move(invalidation), mod_id]() mutable {
            SendInvalidation(std::move(invalidation), mod_id);
          });
    }
    metrics_.invalidation_time_ms.Record(
        ToMillis(last_send_done - fanout_start));
  }
  if (!config_.serialized_invalidation) sim_.After(0, std::move(on_complete));
}

void Engine::ScheduleOutboxDrain(std::uint32_t shard, Time delay) {
  if (drain_scheduled_[shard]) return;
  drain_scheduled_[shard] = 1;
  sim_.After(delay, [this, shard] {
    drain_scheduled_[shard] = 0;
    DrainOutbox(shard);
  });
}

void Engine::DrainOutbox(std::uint32_t shard) {
  core::InvalidationOutbox& outbox = outboxes_[shard];
  if (outbox.empty()) return;
  const auto ready = [this](const std::string& site) {
    const auto it = pseudo_of_client_.find(site);
    WEBCC_CHECK_MSG(it != pseudo_of_client_.end(),
                    "outbox entry for an unknown client");
    const sim::NodeId target = clients_[it->second].node;
    // A partitioned-but-alive site is held so its entries keep coalescing
    // until the link heals — the dup-write guarantee: two writes during the
    // partition become one frame after it. A down site drains normally; the
    // refused send resolves its write targets as dead.
    return !(!net_.Reachable(ServerNode(), target) && net_.IsNodeUp(target) &&
             net_.IsNodeUp(ServerNode()));
  };
  std::vector<core::InvalidationOutbox::Batch> batches = outbox.Drain(ready);
  const Time now = sim_.now();
  for (core::InvalidationOutbox::Batch& batch : batches) {
    net::BatchInvalidation frame;
    frame.client_id = batch.site;
    frame.urls = batch.urls;
    ++metrics_.invalidation_frames_sent;
    metrics_.message_bytes += net::WireSize(frame);
    metrics_.batch_flush_ms.Record(ToMillis(now - batch.oldest_queued));
    inval_senders_[shard]->Enqueue(
        config_.server_costs.invalidation_send_cpu,
        [this, batch = std::move(batch)]() mutable {
          SendInvalidationBatch(std::move(batch));
        });
  }
  if (!outbox.empty()) {
    // Only held (partitioned) sites remain: poll again a window from now.
    ScheduleOutboxDrain(shard, config_.invalidation_batch_window);
  }
}

void Engine::SendInvalidationBatch(core::InvalidationOutbox::Batch batch) {
  const auto it = pseudo_of_client_.find(batch.site);
  WEBCC_CHECK_MSG(it != pseudo_of_client_.end(),
                  "batched invalidation for an unknown client");
  const sim::NodeId target = clients_[it->second].node;
  net::BatchInvalidation frame;
  frame.client_id = batch.site;
  frame.urls = batch.urls;
  const std::uint64_t wire = net::WireSize(frame);

  // Same gating as the unbatched path: a partition that opened between the
  // drain and this send moves the frame to background retry.
  bool gate_released = false;
  if (!net_.Reachable(ServerNode(), target) && net_.IsNodeUp(target) &&
      net_.IsNodeUp(ServerNode())) {
    gate_released = true;
    ResolveBatchFirstAttempts(batch);
  }

  const auto shared = std::make_shared<core::InvalidationOutbox::Batch>(
      std::move(batch));
  net_.SendReliable(
      ServerNode(), target, wire,
      [this, shared, gate_released] {
        if (!gate_released) ResolveBatchFirstAttempts(*shared);
        DeliverInvalidationBatch(*shared);
      },
      [this, shared, gate_released](sim::Network::SendResult result,
                                    Time done_at) {
        if (result == sim::Network::SendResult::kDelivered) return;
        if (!gate_released) ResolveBatchFirstAttempts(*shared);
        for (std::size_t i = 0; i < shared->urls.size(); ++i) {
          ++metrics_.invalidations_refused;
          obs::Emit(sink_,
                    {.type = result == sim::Network::SendResult::kGaveUp
                                 ? obs::EventType::kInvalidateGaveUp
                                 : obs::EventType::kInvalidateRefused,
                     .at = done_at,
                     .url = shared->urls[i],
                     .site = shared->site});
          for (const std::uint64_t mod_id : shared->write_ids[i]) {
            ResolveWriteTarget(mod_id, shared->site, /*dead=*/true);
          }
        }
      },
      /*max_retries=*/-1);
}

void Engine::DeliverInvalidationBatch(
    const core::InvalidationOutbox::Batch& batch) {
  const int index = pseudo_of_client_.at(batch.site);
  PseudoClient& pc = clients_[index];
  for (std::size_t i = 0; i < batch.urls.size(); ++i) {
    pc.cache->Erase(http::ComposeCacheKey(batch.urls[i], batch.site));
    ++metrics_.invalidations_delivered;
    obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                      .at = sim_.now(),
                      .url = batch.urls[i],
                      .site = batch.site});
    // A coalesced entry acks every write it absorbed — the one-frame-on-
    // heal guarantee for a site partitioned through multiple writes.
    for (const std::uint64_t mod_id : batch.write_ids[i]) {
      ResolveWriteTarget(mod_id, batch.site, /*dead=*/false);
    }
  }
}

void Engine::ResolveBatchFirstAttempts(
    const core::InvalidationOutbox::Batch& batch) {
  for (const std::vector<std::uint64_t>& ids : batch.write_ids) {
    for (const std::uint64_t mod_id : ids) ResolveFirstAttempt(mod_id);
  }
}

void Engine::SendInvalidation(net::Invalidation invalidation,
                              std::uint64_t mod_id) {
  sim::NodeId target;
  const bool to_parent =
      config_.hierarchical && invalidation.client_id == "parent";
  if (to_parent) {
    target = ParentNode();
  } else {
    const auto it = pseudo_of_client_.find(invalidation.client_id);
    WEBCC_CHECK_MSG(it != pseudo_of_client_.end(),
                    "invalidation for an unknown client");
    target = clients_[it->second].node;
  }
  const std::uint64_t wire = net::WireSize(invalidation);

  // A send that hits a partition is queued for periodic background retry;
  // the blocking check-in does not wait for it. A reachable target gates
  // the check-in until the message actually arrives (a successful TCP send
  // means the peer acknowledged the bytes).
  bool gate_released = false;
  if (!net_.Reachable(ServerNode(), target) && net_.IsNodeUp(target) &&
      net_.IsNodeUp(ServerNode())) {
    gate_released = true;
    ResolveFirstAttempt(mod_id);
  }

  // TCP with periodic retry across partitions (Section 4's failure
  // handling); a down proxy refuses the connection and is dropped — its
  // recovery path revalidates everything.
  net_.SendReliable(
      ServerNode(), target, wire,
      [this, invalidation, mod_id, gate_released, to_parent] {
        if (!gate_released) ResolveFirstAttempt(mod_id);
        if (to_parent) {
          if (invalidation.type == net::MessageType::kInvalidateUrl) {
            ParentDeliverInvalidation(invalidation.url, mod_id);
            // Targeted journal-recovery invalidations route through the
            // parent like any other, but gate the write-gap, not a
            // delivery machine.
            if (invalidation.recovery) FinishRecoveryNotice();
          } else {
            ParentDeliverServerNotice(invalidation);
          }
        } else {
          DeliverInvalidation(invalidation, mod_id);
        }
      },
      [this, invalidation, mod_id,
       gate_released](sim::Network::SendResult result, Time done_at) {
        if (result == sim::Network::SendResult::kDelivered) return;
        if (!gate_released) ResolveFirstAttempt(mod_id);
        ++metrics_.invalidations_refused;
        obs::Emit(sink_,
                  {.type = result == sim::Network::SendResult::kGaveUp
                               ? obs::EventType::kInvalidateGaveUp
                               : obs::EventType::kInvalidateRefused,
                   .at = done_at,
                   .url = invalidation.url,
                   .site = invalidation.client_id});
        if (invalidation.recovery) {
          // Recovery notices (INVSRV or targeted journal-recovery
          // invalidations) gate the write-gap, not a delivery machine.
          FinishRecoveryNotice();
        } else {
          // A refused target's proxy is down: its cache revalidates
          // everything on restart, so the site counts as resolved-dead.
          ResolveWriteTarget(mod_id, invalidation.client_id, /*dead=*/true);
        }
      },
      /*max_retries=*/-1);
}

void Engine::DeliverInvalidation(const net::Invalidation& invalidation,
                                 std::uint64_t mod_id) {
  const int index = pseudo_of_client_.at(invalidation.client_id);
  PseudoClient& pc = clients_[index];
  if (invalidation.type == net::MessageType::kInvalidateUrl) {
    // Deleting (rather than marking) frees cache space for fresh documents —
    // the cache-utilization benefit the paper credits invalidation with.
    pc.cache->Erase(
        http::ComposeCacheKey(invalidation.url, invalidation.client_id));
    ++metrics_.invalidations_delivered;
    obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                      .at = sim_.now(),
                      .url = invalidation.url,
                      .site = invalidation.client_id});
    if (invalidation.recovery) {
      FinishRecoveryNotice();
    } else {
      ResolveWriteTarget(mod_id, invalidation.client_id, /*dead=*/false);
    }
  } else {
    // Server-address invalidation: every entry this real client holds from
    // that server becomes questionable.
    pc.cache->MarkQuestionableWhere(
        [&invalidation](const http::CacheEntry& entry) {
          return entry.owner == invalidation.client_id;
        });
    FinishRecoveryNotice();
  }
}

void Engine::FinishRecoveryNotice() {
  if (recovery_notices_pending_ > 0 && --recovery_notices_pending_ == 0) {
    // Every ever-seen site has been told (or is dead and will revalidate on
    // its own recovery): the downtime writes are as complete as they get.
    write_gap_active_ = false;
  }
}

void Engine::ResolveFirstAttempt(std::uint64_t mod_id) {
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  if (--it->second.first_pending > 0) return;
  std::function<void()> on_complete = std::move(it->second.on_complete);
  it->second.on_complete = nullptr;
  if (it->second.delivery.complete()) pending_mod_targets_.erase(it);
  if (on_complete) on_complete();
}

void Engine::FinishWriteDelivery(PendingMod& pending) {
  const core::WriteDelivery& delivery = pending.delivery;
  WEBCC_DCHECK(delivery.complete());
  ++metrics_.write_completions;
  obs::WriteCompleteKind kind = obs::WriteCompleteKind::kAllAcked;
  // Every enumerator spelled out (no default:) so -Wswitch flags any future
  // Completion state this mapping forgets — webcc_lint's enum-switch-default
  // rule keeps it that way. kPending is unreachable: the DCHECK above
  // guarantees the delivery completed.
  switch (delivery.completion()) {
    case core::WriteDelivery::Completion::kLeasesExpired:
      kind = obs::WriteCompleteKind::kLeasesExpired;
      ++metrics_.write_lease_expired_completions;
      break;
    case core::WriteDelivery::Completion::kNoTargets:
      kind = obs::WriteCompleteKind::kNoTargets;
      break;
    case core::WriteDelivery::Completion::kPending:
    case core::WriteDelivery::Completion::kAllAcked:
      break;
  }
  metrics_.write_completion_wall_ms.Record(
      ToMillis(sim_.now() - pending.started_wall));
  // Trace-time span the write stayed incomplete, lock-step granular: the
  // current interval's start is the best trace-order stamp for "now". The
  // Section 6 bound says this never exceeds lease duration (+ one interval
  // of lock-step rounding) for lease-augmented invalidation.
  metrics_.write_blocked_trace_ms.Record(ToMillis(
      std::max<Time>(0, CurrentWindowStart() - pending.started_trace)));
  obs::Emit(sink_, {.type = obs::EventType::kWriteComplete,
                    .at = sim_.now(),
                    .trace_time = pending.started_trace,
                    .url = delivery.url(),
                    .detail = static_cast<std::int64_t>(kind)});
  CompleteWrite(delivery.url());
}

void Engine::ResolveWriteTarget(std::uint64_t mod_id, std::string_view site,
                                bool dead) {
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  core::WriteDelivery& delivery = it->second.delivery;
  const bool resolved_all =
      dead ? delivery.MarkDead(site) : delivery.Ack(site);
  if (!resolved_all) return;
  FinishWriteDelivery(it->second);
  if (it->second.first_pending <= 0) pending_mod_targets_.erase(it);
}

void Engine::SweepExpiredWriteTargets(Time trace_now) {
  for (auto it = pending_mod_targets_.begin();
       it != pending_mod_targets_.end();) {
    PendingMod& pending = it->second;
    if (!pending.delivery.complete() &&
        pending.delivery.ExpireLeases(trace_now)) {
      FinishWriteDelivery(pending);
    }
    // A completed delivery lingers only while the modifier gate still
    // waits on unresolved first attempts.
    if (pending.delivery.complete() && pending.first_pending <= 0) {
      it = pending_mod_targets_.erase(it);
    } else {
      ++it;
    }
  }
}

void Engine::CompleteWrite(const std::string& url) {
  const auto it = writes_in_progress_.find(url);
  if (it != writes_in_progress_.end() && --it->second <= 0) {
    writes_in_progress_.erase(it);
  }
}

void Engine::ServerRecover(Time trace_time) {
  std::vector<net::Invalidation> notices;
  if (accel_.journal_enabled()) {
    // Write-ahead journal survives the crash: rebuild the site lists from
    // it and send *targeted* invalidations only for documents that changed
    // during the downtime. A damaged journal falls back to the blanket
    // INVSRV broadcast inside RecoverFromJournal.
    core::ShardedAccelerator::RecoveryOutcome outcome =
        accel_.RecoverFromJournal(trace_time);
    ++metrics_.journal_rebuilds;
    if (outcome.journal_damaged) ++metrics_.journal_damaged_recoveries;
    obs::Emit(sink_, {.type = obs::EventType::kJournalRebuild,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .site = "server",
                      .detail = outcome.journal_damaged ? 1 : 0});
    notices = std::move(outcome.invalidations);
  } else {
    notices = accel_.Recover();
  }
  recovery_notices_pending_ = static_cast<int>(notices.size());
  if (notices.empty()) write_gap_active_ = false;
  // Recovery notices always take the unbatched path (fault semantics are
  // untouched by batching); in decoupled mode a targeted invalidation goes
  // out on its URL's shard sender, INVSRV broadcasts on shard 0.
  for (net::Invalidation& notice : notices) {
    if (notice.type == net::MessageType::kInvalidateUrl) {
      ++metrics_.recovery_invalidations_sent;
    } else {
      ++metrics_.invsrv_sent;
    }
    metrics_.message_bytes += net::WireSize(notice);
    sim::FifoStation& sender =
        config_.serialized_invalidation
            ? server_cpu_
            : *inval_senders_[notice.type == net::MessageType::kInvalidateUrl
                                  ? accel_.ShardOf(notice.url)
                                  : 0];
    sender.Enqueue(config_.server_costs.invalidation_send_cpu,
                   [this, notice = std::move(notice)]() mutable {
                     SendInvalidation(std::move(notice), 0);
                   });
  }
}

}  // namespace webcc::replay::detail
