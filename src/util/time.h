// Simulated-time primitives.
//
// All simulated timestamps and durations in webcc are int64 microseconds.
// A plain integer (rather than std::chrono) keeps event-queue keys, wire
// fields and trace records trivially comparable and serializable; the
// helpers below keep call sites readable.
#pragma once

#include <cstdint>

namespace webcc {

// Absolute simulated time (microseconds since the start of a run) or a
// duration, depending on context.
using Time = std::int64_t;

inline constexpr Time kMicrosecond = 1;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;
inline constexpr Time kMinute = 60 * kSecond;
inline constexpr Time kHour = 60 * kMinute;
inline constexpr Time kDay = 24 * kHour;

constexpr double ToSeconds(Time t) { return static_cast<double>(t) / kSecond; }
constexpr double ToMillis(Time t) {
  return static_cast<double>(t) / kMillisecond;
}
constexpr Time FromSeconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}

}  // namespace webcc
