// Unit tests for the fault-injection layer and the recovery machinery it
// exercises: FaultPlan JSON round-trips and deterministic generation, the
// FaultClock's zero-draw determinism contract, the WriteDelivery completion
// rule (Sections 4 and 6), and the write-ahead journal's corruption modes
// (clean tear = exact recovery; damage = conservative superset).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/accelerator.h"
#include "core/delivery.h"
#include "core/journal.h"
#include "fault/clock.h"
#include "fault/plan.h"
#include "http/document_store.h"
#include "net/message.h"
#include "util/time.h"

namespace webcc {
namespace {

// --- fault plans: JSON round-trip ------------------------------------------------

fault::FaultPlan SamplePlan() {
  fault::FaultPlan plan;
  plan.name = "sample";
  plan.events.push_back({.at = 10 * kMinute,
                         .kind = fault::FaultKind::kProxyCrash,
                         .target = 3,
                         .duration = 2 * kMinute});
  plan.events.push_back({.at = 30 * kMinute,
                         .kind = fault::FaultKind::kServerCrash,
                         .target = -1,
                         .duration = 90 * kSecond});
  plan.events.push_back({.at = 5 * kMinute,
                         .kind = fault::FaultKind::kPartition,
                         .target = 1,
                         .duration = 4 * kMinute});
  plan.events.push_back({.at = 20 * kMinute,
                         .kind = fault::FaultKind::kLinkFault,
                         .target = -1,
                         .duration = 10 * kMinute,
                         .drop = 0.25,
                         .duplicate = 0.05,
                         .extra_delay = 40 * kMillisecond});
  return plan;
}

TEST(FaultPlanJson, RoundTripPreservesEveryField) {
  fault::FaultPlan plan = SamplePlan();
  const std::string json = fault::ToJson(plan);

  fault::FaultPlan parsed;
  std::string error;
  ASSERT_TRUE(fault::FromJson(json, parsed, error)) << error;

  fault::Canonicalize(plan);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  EXPECT_EQ(parsed.name, plan.name);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const fault::FaultEvent& a = plan.events[i];
    const fault::FaultEvent& b = parsed.events[i];
    EXPECT_EQ(a.at, b.at) << "event " << i;
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.target, b.target) << "event " << i;
    EXPECT_EQ(a.duration, b.duration) << "event " << i;
    EXPECT_DOUBLE_EQ(a.drop, b.drop) << "event " << i;
    EXPECT_DOUBLE_EQ(a.duplicate, b.duplicate) << "event " << i;
    EXPECT_EQ(a.extra_delay, b.extra_delay) << "event " << i;
  }
  // A second round-trip is byte-stable: the dialect is its own fixed point.
  EXPECT_EQ(fault::ToJson(parsed), json);
}

TEST(FaultPlanJson, CanonicalizeSortsByTimeKindTarget) {
  fault::FaultPlan plan = SamplePlan();
  fault::Canonicalize(plan);
  for (std::size_t i = 1; i < plan.events.size(); ++i) {
    EXPECT_LE(plan.events[i - 1].at, plan.events[i].at);
  }
  EXPECT_EQ(plan.events.front().kind, fault::FaultKind::kPartition);
}

TEST(FaultPlanJson, RejectsMalformedInput) {
  fault::FaultPlan parsed;
  std::string error;
  EXPECT_FALSE(fault::FromJson("not json", parsed, error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::FromJson("{\"events\": [{\"kind\": \"warp_core\"}]}",
                               parsed, error));
}

TEST(FaultPlanJson, PlanFileCarriesRawExpectValues) {
  const std::string text =
      "{\"name\": \"golden\", \"events\": ["
      "{\"kind\": \"partition\", \"at_s\": 60, \"target\": 0,"
      " \"duration_s\": 120}],"
      " \"expect\": {\"replay.trace_digest\": 1234567890123456789,"
      " \"replay.strong_violations\": 0}}";
  fault::FaultPlanFile file;
  std::string error;
  ASSERT_TRUE(fault::ParseFaultPlanFile(text, file, error)) << error;
  ASSERT_EQ(file.plan.events.size(), 1u);
  EXPECT_EQ(file.plan.events[0].at, 60 * kSecond);
  // Numbers survive as raw text, so 64-bit digests do not lose precision.
  EXPECT_EQ(file.expect.at("replay.trace_digest"), "1234567890123456789");
  EXPECT_EQ(file.expect.at("replay.strong_violations"), "0");
}

// --- fault plans: deterministic generation ---------------------------------------

TEST(FaultPlanRandom, SameSeedSamePlanDifferentSeedDifferent) {
  fault::RandomPlanConfig config;
  const fault::FaultPlan a = fault::Random(config, 7);
  const fault::FaultPlan b = fault::Random(config, 7);
  const fault::FaultPlan c = fault::Random(config, 8);
  EXPECT_EQ(fault::ToJson(a), fault::ToJson(b));
  EXPECT_NE(fault::ToJson(a), fault::ToJson(c));
}

TEST(FaultPlanRandom, RespectsConfigBounds) {
  fault::RandomPlanConfig config;
  config.horizon = 1 * kHour;
  config.clients = 8;
  config.allow_server_crash = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const fault::FaultPlan plan = fault::Random(config, seed);
    EXPECT_FALSE(plan.empty());
    for (const fault::FaultEvent& event : plan.events) {
      EXPECT_GE(event.at, 0);
      EXPECT_LT(event.at, config.horizon);
      EXPECT_GE(event.duration, config.min_duration);
      EXPECT_LE(event.duration, config.max_duration);
      EXPECT_LT(event.target, config.clients);
      EXPECT_NE(event.kind, fault::FaultKind::kServerCrash);
      EXPECT_LE(event.drop, config.max_drop);
      EXPECT_LE(event.duplicate, config.max_duplicate);
      EXPECT_LE(event.extra_delay, config.max_extra_delay);
    }
  }
}

// --- fault clock -----------------------------------------------------------------

fault::FaultPlan LinkFaultPlan(int target, Time at, Time duration, double drop,
                               double duplicate, Time extra_delay) {
  fault::FaultPlan plan;
  plan.events.push_back({.at = at,
                         .kind = fault::FaultKind::kLinkFault,
                         .target = target,
                         .duration = duration,
                         .drop = drop,
                         .duplicate = duplicate,
                         .extra_delay = extra_delay});
  return plan;
}

TEST(FaultClock, InactiveWindowPerturbsNothing) {
  fault::FaultClock clock(
      LinkFaultPlan(-1, 10 * kMinute, 5 * kMinute, 1.0, 1.0, kSecond), 1);
  clock.BindNodes(0, {1, 2});
  clock.Advance(0, 5 * kMinute);  // before the window
  EXPECT_EQ(clock.active_windows(), 0);
  const sim::Perturbation p = clock.Perturb(0, 1);
  EXPECT_FALSE(p.drop);
  EXPECT_FALSE(p.duplicate);
  EXPECT_EQ(p.extra_delay, 0);
}

TEST(FaultClock, SubIntervalWindowStillActivates) {
  // Window [6m, 7m) is shorter than the [5m, 10m) lock-step interval;
  // overlap semantics must still latch it, like ApplyFailure does.
  fault::FaultClock clock(
      LinkFaultPlan(-1, 6 * kMinute, 1 * kMinute, 1.0, 0.0, 0), 1);
  clock.BindNodes(0, {1});
  clock.Advance(5 * kMinute, 10 * kMinute);
  EXPECT_EQ(clock.active_windows(), 1);
  EXPECT_TRUE(clock.Perturb(0, 1).drop);
  clock.Advance(10 * kMinute, 15 * kMinute);
  EXPECT_EQ(clock.active_windows(), 0);
}

TEST(FaultClock, TargetedWindowLeavesOtherLinksAlone) {
  fault::FaultClock clock(LinkFaultPlan(0, 0, kHour, 1.0, 0.0, kSecond), 1);
  const sim::NodeId server = 9;
  clock.BindNodes(server, {11, 12});
  clock.Advance(0, 5 * kMinute);
  ASSERT_EQ(clock.active_windows(), 1);
  // Both directions of proxy 0's link are hit (a dropped message carries no
  // delay — it never travels)...
  EXPECT_TRUE(clock.Perturb(server, 11).drop);
  EXPECT_TRUE(clock.Perturb(11, server).drop);
  // ...while proxy 1's link never is, for any number of calls.
  for (int i = 0; i < 50; ++i) {
    const sim::Perturbation p = clock.Perturb(server, 12);
    EXPECT_FALSE(p.drop);
    EXPECT_EQ(p.extra_delay, 0);
  }
}

TEST(FaultClock, TargetedDelayOnlyWindowDelaysJustItsLink) {
  fault::FaultClock clock(LinkFaultPlan(0, 0, kHour, 0.0, 0.0, kSecond), 1);
  const sim::NodeId server = 9;
  clock.BindNodes(server, {11, 12});
  clock.Advance(0, 5 * kMinute);
  EXPECT_EQ(clock.Perturb(server, 11).extra_delay, kSecond);
  EXPECT_EQ(clock.Perturb(11, server).extra_delay, kSecond);
  EXPECT_EQ(clock.Perturb(server, 12).extra_delay, 0);
}

TEST(FaultClock, SameSeedSameDecisionSequence) {
  const fault::FaultPlan plan =
      LinkFaultPlan(-1, 0, kHour, 0.4, 0.3, 10 * kMillisecond);
  fault::FaultClock a(plan, 99);
  fault::FaultClock b(plan, 99);
  a.BindNodes(0, {1, 2});
  b.BindNodes(0, {1, 2});
  a.Advance(0, kHour);
  b.Advance(0, kHour);
  for (int i = 0; i < 200; ++i) {
    const sim::NodeId to = 1 + (i % 2);
    const sim::Perturbation pa = a.Perturb(0, to);
    const sim::Perturbation pb = b.Perturb(0, to);
    EXPECT_EQ(pa.drop, pb.drop) << "call " << i;
    EXPECT_EQ(pa.duplicate, pb.duplicate) << "call " << i;
    EXPECT_EQ(pa.extra_delay, pb.extra_delay) << "call " << i;
  }
}

TEST(FaultClock, OverlappingWindowsAddDelays) {
  fault::FaultPlan plan = LinkFaultPlan(-1, 0, kHour, 0.0, 0.0, 20 * kMillisecond);
  plan.events.push_back({.at = 0,
                         .kind = fault::FaultKind::kLinkFault,
                         .target = -1,
                         .duration = kHour,
                         .extra_delay = 30 * kMillisecond});
  fault::FaultClock clock(plan, 1);
  clock.BindNodes(0, {1});
  clock.Advance(0, 5 * kMinute);
  EXPECT_EQ(clock.active_windows(), 2);
  EXPECT_EQ(clock.Perturb(0, 1).extra_delay, 50 * kMillisecond);
}

// --- write-delivery state machine ------------------------------------------------

TEST(WriteDelivery, NoTargetsIsCompleteImmediately) {
  core::WriteDelivery delivery("u");
  EXPECT_TRUE(delivery.complete());
  EXPECT_EQ(delivery.completion(), core::WriteDelivery::Completion::kNoTargets);
}

TEST(WriteDelivery, AllAckedPath) {
  core::WriteDelivery delivery("u");
  delivery.AddTarget("a", net::kNoLease);
  delivery.AddTarget("b", net::kNoLease);
  EXPECT_FALSE(delivery.complete());
  EXPECT_EQ(delivery.completion(), core::WriteDelivery::Completion::kPending);
  EXPECT_FALSE(delivery.Ack("a"));
  EXPECT_TRUE(delivery.Ack("b"));
  EXPECT_EQ(delivery.completion(), core::WriteDelivery::Completion::kAllAcked);
  // Duplicate and unknown acks are ignored (a duplicated datagram may ack
  // twice; a stray site was never a target).
  EXPECT_FALSE(delivery.Ack("b"));
  EXPECT_FALSE(delivery.Ack("nobody"));
  EXPECT_EQ(delivery.completion(), core::WriteDelivery::Completion::kAllAcked);
}

TEST(WriteDelivery, LeaseExpiryResolvesStragglerHalfOpen) {
  core::WriteDelivery delivery("u");
  delivery.AddTarget("fast", net::kNoLease);
  delivery.AddTarget("stuck", /*lease_until=*/100);
  EXPECT_FALSE(delivery.Ack("fast"));
  EXPECT_EQ(delivery.NextExpiry(), 100);
  // Half-open lease interval: still active at 99, dead at exactly 100.
  EXPECT_FALSE(delivery.ExpireLeases(99));
  EXPECT_FALSE(delivery.complete());
  EXPECT_TRUE(delivery.ExpireLeases(100));
  EXPECT_EQ(delivery.completion(),
            core::WriteDelivery::Completion::kLeasesExpired);
}

TEST(WriteDelivery, NoLeaseTargetOnlyResolvesByAckOrDeath) {
  core::WriteDelivery delivery("u");
  delivery.AddTarget("forever", net::kNoLease);
  EXPECT_FALSE(delivery.ExpireLeases(365 * kDay));
  EXPECT_FALSE(delivery.complete());
  EXPECT_EQ(delivery.NextExpiry(), net::kNoLease);
  EXPECT_TRUE(delivery.MarkDead("forever"));
  // Death is not a clean ack set: the completion records the bound.
  EXPECT_EQ(delivery.completion(),
            core::WriteDelivery::Completion::kLeasesExpired);
}

TEST(WriteDelivery, ReAddingTargetKeepsLaterExpiry) {
  core::WriteDelivery delivery("u");
  delivery.AddTarget("s", 50);
  delivery.AddTarget("s", 200);
  EXPECT_EQ(delivery.total_targets(), 1);
  EXPECT_FALSE(delivery.ExpireLeases(100));  // 50 would have lapsed; 200 holds
  EXPECT_EQ(delivery.NextExpiry(), 200);
  EXPECT_TRUE(delivery.ExpireLeases(200));
}

TEST(WriteDelivery, MixedResolutionCountsAsLeaseBound) {
  core::WriteDelivery delivery("u");
  delivery.AddTarget("acked", net::kNoLease);
  delivery.AddTarget("leased", 10);
  delivery.AddTarget("dead", net::kNoLease);
  EXPECT_FALSE(delivery.Ack("acked"));
  EXPECT_FALSE(delivery.MarkDead("dead"));
  EXPECT_EQ(delivery.outstanding(), 1);
  EXPECT_TRUE(delivery.ExpireLeases(10));
  EXPECT_EQ(delivery.completion(),
            core::WriteDelivery::Completion::kLeasesExpired);
  EXPECT_EQ(delivery.total_targets(), 3);
}

// --- write-ahead journal corruption modes ----------------------------------------

core::SiteJournal FilledJournal() {
  core::SiteJournal journal;
  journal.AppendVersion("/a.html", 1);
  journal.AppendRegister("/a.html", "site1", net::kNoLease);
  journal.AppendRegister("/a.html", "site2", 5 * kMinute);
  journal.AppendVersion("/b.html", 3);
  journal.AppendRegister("/b.html", "site1", net::kNoLease);
  journal.AppendInvalidate("/a.html");
  journal.AppendRegister("/a.html", "site3", net::kNoLease);
  return journal;
}

TEST(SiteJournal, ReplayRoundTripsEveryRecordKind) {
  const core::SiteJournal journal = FilledJournal();
  const core::SiteJournal::ReplayResult result = journal.Replay();
  EXPECT_FALSE(result.damaged);
  EXPECT_FALSE(result.truncated_tail);
  EXPECT_EQ(result.records_rejected, 0u);
  ASSERT_EQ(result.records_applied, 7u);
  EXPECT_EQ(result.entries[0].kind, 'V');
  EXPECT_EQ(result.entries[0].url, "/a.html");
  EXPECT_EQ(result.entries[0].version, 1u);
  EXPECT_EQ(result.entries[1].kind, 'R');
  EXPECT_EQ(result.entries[1].site, "site1");
  EXPECT_EQ(result.entries[1].lease_until, net::kNoLease);
  EXPECT_EQ(result.entries[2].lease_until, 5 * kMinute);
  EXPECT_EQ(result.entries[5].kind, 'I');
}

TEST(SiteJournal, TornFinalLineIsCleanTruncationNotDamage) {
  core::SiteJournal journal = FilledJournal();
  std::string text = journal.text();
  // Tear mid-way through the final record: drop the '\n' and a few bytes,
  // as a crash during the final append would.
  text.resize(text.size() - 5);
  const core::SiteJournal::ReplayResult result =
      core::SiteJournal::Replay(text);
  EXPECT_TRUE(result.truncated_tail);
  EXPECT_FALSE(result.damaged);  // append-before-act: the tear is exact
  EXPECT_EQ(result.records_applied, 6u);
  EXPECT_EQ(result.records_rejected, 0u);
}

TEST(SiteJournal, ChecksumFlipMarksDamagedAndRejectsSuffix) {
  core::SiteJournal journal = FilledJournal();
  std::string text = journal.text();
  // Flip one byte inside the third record's body.
  std::size_t pos = 0;
  for (int i = 0; i < 2; ++i) pos = text.find('\n', pos) + 1;
  const std::size_t victim = text.find("site2", pos);
  ASSERT_NE(victim, std::string::npos);
  text[victim] = 'X';
  const core::SiteJournal::ReplayResult result =
      core::SiteJournal::Replay(text);
  EXPECT_TRUE(result.damaged);
  // The valid prefix survives; the damaged line and everything after it —
  // trustworthy or not — is rejected.
  EXPECT_EQ(result.records_applied, 2u);
  EXPECT_EQ(result.records_rejected, 5u);
}

TEST(SiteJournal, GarbageAndUnknownKindsAreDamage) {
  {
    core::SiteJournal journal;
    journal.SetText("complete garbage\n");
    const auto result = journal.Replay();
    EXPECT_TRUE(result.damaged);
    EXPECT_EQ(result.records_applied, 0u);
  }
  {
    // Well-formed line shape but an unknown record kind.
    core::SiteJournal journal;
    journal.SetText("0123456789abcdef X /a.html\n");
    EXPECT_TRUE(journal.Replay().damaged);
  }
}

// --- accelerator journal recovery ------------------------------------------------

net::Request Get(std::string url, std::string client) {
  net::Request request;
  request.type = net::MessageType::kGet;
  request.url = std::move(url);
  request.client_id = std::move(client);
  return request;
}

struct RecoveryFixture {
  http::DocumentStore docs;
  core::Accelerator accel;

  RecoveryFixture() : accel(docs, core::LeaseConfig{}, "origin") {
    docs.Add("/a.html", 4096, /*last_modified=*/0);
    docs.Add("/b.html", 4096, /*last_modified=*/0);
    accel.EnableJournal(true);
    accel.HandleRequest(Get("/a.html", "site1"), kSecond);
    accel.HandleRequest(Get("/a.html", "site2"), 2 * kSecond);
    accel.HandleRequest(Get("/b.html", "site1"), 3 * kSecond);
  }
};

TEST(AcceleratorJournal, IntactJournalRestoresExactlyAndTargetsChangedDocs) {
  RecoveryFixture fx;
  const std::vector<core::InvalidationTable::Snapshot> before =
      fx.accel.table().SnapshotEntries();
  ASSERT_EQ(before.size(), 3u);

  // /a.html changes while the server is down; /b.html does not.
  fx.docs.Touch("/a.html", kMinute);
  fx.accel.Crash();
  EXPECT_TRUE(fx.accel.table().SnapshotEntries().empty());

  const core::Accelerator::RecoveryOutcome outcome =
      fx.accel.RecoverFromJournal(2 * kMinute);
  EXPECT_FALSE(outcome.journal_damaged);
  EXPECT_EQ(outcome.records_rejected, 0u);
  EXPECT_EQ(outcome.entries_restored, 3u);

  // Targeted recovery: only /a.html's registered sites hear about it, as
  // kInvalidateUrl with the recovery flag — never a server-wide broadcast.
  ASSERT_EQ(outcome.invalidations.size(), 2u);
  std::set<std::string> notified;
  for (const net::Invalidation& inv : outcome.invalidations) {
    EXPECT_EQ(inv.type, net::MessageType::kInvalidateUrl);
    EXPECT_EQ(inv.url, "/a.html");
    EXPECT_TRUE(inv.recovery);
    notified.insert(inv.client_id);
  }
  EXPECT_EQ(notified, (std::set<std::string>{"site1", "site2"}));

  // /b.html's registration survived the crash; /a.html's list was taken by
  // the recovery invalidations, exactly as a normal modification would.
  const auto after = fx.accel.table().SnapshotEntries();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].url, "/b.html");
  EXPECT_EQ(after[0].site, "site1");
}

TEST(AcceleratorJournal, DamagedJournalRestoresSupersetAndBroadcasts) {
  RecoveryFixture fx;
  // The modification (and its journaled 'I' wipe) happens, THEN the tail of
  // the journal is damaged — so recovery cannot see the wipe and must keep
  // the conservative superset.
  fx.docs.Touch("/a.html", kMinute);
  const std::vector<net::Invalidation> live =
      fx.accel.HandleNotify(net::Notify{"/a.html"}, kMinute);
  EXPECT_EQ(live.size(), 2u);  // normal operation invalidated both sites
  const auto before_crash = fx.accel.table().SnapshotEntries();
  ASSERT_EQ(before_crash.size(), 1u);  // only /b.html remains

  std::string text = fx.accel.journal().text();
  // Corrupt the journaled wipe: damage the final 'I' record's checksum.
  const std::size_t wipe = text.rfind(" I /a.html");
  ASSERT_NE(wipe, std::string::npos);
  const std::size_t line_start = text.rfind('\n', wipe) + 1;
  text[line_start] = text[line_start] == '0' ? '1' : '0';
  fx.accel.journal().SetText(std::move(text));

  fx.accel.Crash();
  const core::Accelerator::RecoveryOutcome outcome =
      fx.accel.RecoverFromJournal(2 * kMinute);
  EXPECT_TRUE(outcome.journal_damaged);
  EXPECT_GE(outcome.records_rejected, 1u);

  // Conservative superset: every entry alive before the crash is restored
  // (extra, already-invalidated ones may also reappear — never fewer).
  const auto after = fx.accel.table().SnapshotEntries();
  for (const auto& entry : before_crash) {
    const bool present = std::any_of(
        after.begin(), after.end(), [&entry](const auto& candidate) {
          return candidate.url == entry.url && candidate.site == entry.site;
        });
    EXPECT_TRUE(present) << entry.url << " @ " << entry.site;
  }
  EXPECT_GE(after.size(), before_crash.size());

  // Damage means history is unknowable: the blanket INVSRV broadcast goes
  // to every site ever seen, each flagged as recovery traffic.
  ASSERT_EQ(outcome.invalidations.size(), 2u);  // site1, site2
  for (const net::Invalidation& inv : outcome.invalidations) {
    EXPECT_EQ(inv.type, net::MessageType::kInvalidateServer);
    EXPECT_EQ(inv.server, "origin");
    EXPECT_TRUE(inv.recovery);
  }
}

TEST(AcceleratorJournal, RebuildDropsLeasesThatLapsedWhileDown) {
  // Regression (ISSUE 7): journal replay used to Restore already-expired
  // leases verbatim, so a recovery after a long outage reported inflated
  // entries/storage_bytes until the next prune (and seeded the expiry
  // wheel with dead slots). Lapsed registrations must die at rebuild.
  http::DocumentStore docs;
  core::LeaseConfig lease;
  lease.mode = core::LeaseMode::kFixed;
  lease.duration = 10 * kMinute;
  core::Accelerator accel(docs, lease, "origin");
  docs.Add("/a.html", 4096, /*last_modified=*/0);
  accel.EnableJournal(true);
  accel.HandleRequest(Get("/a.html", "early"), kMinute);    // lease: 11min
  accel.HandleRequest(Get("/a.html", "late"), 25 * kMinute);  // lease: 35min

  accel.Crash();
  // Recovery at t=30min: "early"'s lease lapsed during the outage, "late"
  // still holds one. Only the live entry may be restored.
  const core::Accelerator::RecoveryOutcome outcome =
      accel.RecoverFromJournal(30 * kMinute);
  EXPECT_FALSE(outcome.journal_damaged);
  EXPECT_EQ(outcome.entries_restored, 1u);
  const auto entries = accel.table().SnapshotEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].site, "late");
  // The dropped lease leaves no storage behind — the metric the old code
  // inflated — and the boundary is the same half-open rule as everywhere:
  // recovery at exactly the expiry instant also drops it.
  EXPECT_EQ(accel.table().TotalEntries(), 1u);
  accel.Crash();
  EXPECT_EQ(accel.RecoverFromJournal(35 * kMinute).entries_restored, 0u);
}

TEST(AcceleratorJournal, RecoveryCompactsJournalToSnapshot) {
  RecoveryFixture fx;
  const std::uint64_t appends_before = fx.accel.journal().appends();
  EXPECT_GT(appends_before, 0u);
  fx.accel.Crash();
  (void)fx.accel.RecoverFromJournal(kMinute);

  // The compacted journal replays cleanly to exactly the restored state:
  // one V per known document, one R per live table entry.
  const core::SiteJournal::ReplayResult compacted = fx.accel.journal().Replay();
  EXPECT_FALSE(compacted.damaged);
  std::size_t versions = 0;
  std::size_t registrations = 0;
  for (const core::SiteJournal::Entry& entry : compacted.entries) {
    versions += entry.kind == 'V' ? 1 : 0;
    registrations += entry.kind == 'R' ? 1 : 0;
  }
  EXPECT_EQ(versions, 2u);  // /a.html and /b.html baselines
  EXPECT_EQ(registrations, fx.accel.table().SnapshotEntries().size());

  // A second crash+recovery off the compacted journal is a fixed point.
  fx.accel.Crash();
  const auto again = fx.accel.RecoverFromJournal(2 * kMinute);
  EXPECT_FALSE(again.journal_damaged);
  EXPECT_EQ(again.entries_restored, 3u);
  EXPECT_TRUE(again.invalidations.empty());  // nothing changed meanwhile
}

}  // namespace
}  // namespace webcc
