// Fixed-width ASCII table rendering for the bench binaries.
//
// The table benches print rows in the paper's layout next to the paper's
// reported values; this renderer handles column sizing and alignment.
#pragma once

#include <string>
#include <vector>

namespace webcc::stats {

class Table {
 public:
  // Column headers define the column count; every AddRow must match it.
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // A rule row renders as a full-width separator line.
  void AddSeparator();

  // Renders with a header rule; first column left-aligned, rest right.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows_;
};

}  // namespace webcc::stats
