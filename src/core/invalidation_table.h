// The accelerator's invalidation table: per-URL lists of client sites that
// may hold a cached copy.
//
// Following the paper, the server never asks clients whether they cache a
// document — every requester is pessimistically added to the document's site
// list and removed when it is sent an invalidation (so a site that never
// requests the document again receives no further invalidations).
//
// Leases (Section 6) bound the lists: a site entry only earns a place while
// its lease is in force, so list size is bounded by the requests of the last
// lease window, and with two-tier leases a plain GET's near-zero lease keeps
// one-time viewers out of the table entirely.
//
// URLs and client identifiers are interned to dense ids (core::Interner):
// this table sits on the server's per-request hot path (Register on every
// GET/IMS), so the site lists key on integers and each request hashes its
// strings exactly once. The public interface stays string-based.
//
// Million-site scale (ROADMAP item 4): site lists are CompactSiteList —
// dense open-addressing tables of 12-byte slots keyed on the site id — and
// lease expiry is indexed by a hashed TimerWheel, so PruneExpired is
// O(expired) amortized instead of a full-table scan, and a repeat viewer's
// renewal refreshes its wheel slot lazily instead of re-registering. The
// wheel is an index only; every expiry decision re-reads the authoritative
// lease through core::LeaseActive, which keeps prune results (and replay
// digests) bit-identical to the old scan at any shard count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/intern.h"
#include "core/policy.h"
#include "core/site_list.h"
#include "core/timer_wheel.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "util/time.h"

namespace webcc::core {

class InvalidationTable {
 public:
  explicit InvalidationTable(LeaseConfig lease);

  // Registers `client` for `url` following a request of `request_type`
  // (kGet or kIfModifiedSince) at protocol time `now`. Returns the lease
  // expiry granted (net::kNoLease when leases are off). A zero-length lease
  // does not create an entry. A repeat viewer with a live entry is a
  // *renewal*: its expiry is refreshed in place (never shortened) and the
  // timer wheel picks the new slot up lazily — no second entry, no second
  // wheel slot.
  Time Register(std::string_view url, std::string_view client,
                net::MessageType request_type, Time now);

  // Collects the sites holding an unexpired lease on `url` and clears the
  // list (each collected site is about to receive an invalidation, after
  // which the server forgets it, as in the paper). Entries whose lease
  // already lapsed are dropped through the same expiry accounting as
  // PruneExpired — they emit kLeaseExpiry (site-sorted) and count toward
  // leases_expired(), so the DESIGN §8 event/counter reconciliation holds
  // no matter which path retires an entry.
  std::vector<std::string> TakeSitesForInvalidation(std::string_view url,
                                                    Time now);

  // Like TakeSitesForInvalidation, but keeps each site's lease expiry — the
  // delivery-state machine needs it to decide when a straggler's lease
  // lapses and the write may complete without its ack (Section 6 bound).
  struct TakenSite {
    std::string site;
    Time lease_until = net::kNoLease;
  };
  std::vector<TakenSite> TakeSitesWithLeases(std::string_view url, Time now);

  // Silently discards `url`'s whole list: journal replay applying an 'I'
  // record. History replay is not protocol execution — it must not emit
  // events or touch the expiry counters (RebuildFromJournal's phase 1
  // contract is "no events"), so it does not go through the Take path.
  void DropList(std::string_view url);

  // Re-inserts one entry (journal recovery: rebuilding the table the crash
  // destroyed) and seeds the timer wheel with its expiry. An entry whose
  // lease already lapsed by `now` is dropped here — resurrecting it would
  // inflate entries/storage_bytes until the next prune and fill the wheel
  // with dead slots. Returns whether the entry was restored.
  bool Restore(std::string_view url, std::string_view client,
               Time lease_until, Time now);

  // Full, deterministic (url, site)-sorted dump of the live table. Used to
  // snapshot-compact the journal after recovery and by the fault tests to
  // prove the rebuilt table is a superset of what the crash destroyed.
  struct Snapshot {
    std::string url;
    std::string site;
    Time lease_until = net::kNoLease;
  };
  std::vector<Snapshot> SnapshotEntries() const;

  // Number of live (unexpired) entries for one URL.
  std::size_t ListLength(std::string_view url, Time now) const;

  // Drops expired entries table-wide; returns how many were pruned. The
  // replay calls this at lock-step boundaries so storage numbers reflect
  // live leases only. O(expired + slots passed) amortized via the wheel.
  std::size_t PruneExpired(Time now);

  // One entry dropped by a prune. The views point into the interners, which
  // never discard names, so they stay valid after the entry is erased.
  struct ExpiredEntry {
    std::string_view url;
    std::string_view site;
    Time lease_until = net::kNoLease;
  };

  // Like PruneExpired, but appends the dropped entries to `out` instead of
  // emitting kLeaseExpiry events (and regardless of the trace sink). The
  // sharded accelerator prunes every shard through this, then sorts and
  // emits the union so the event stream is identical at any shard count.
  std::size_t PruneExpiredInto(Time now, std::vector<ExpiredEntry>& out);

  // --- storage accounting (Table 5) ---------------------------------------
  // Total present entries across all URLs (live + expired-not-yet-pruned).
  std::size_t TotalEntries() const { return total_entries_; }
  // Longest current list.
  std::size_t MaxListLength() const;
  // Approximate bytes consumed under the paper's accounting: per entry, the
  // client identifier plus the lease timestamp and list linkage (the paper
  // observes 20-30 bytes per request). Kept model-level so Table 5 numbers
  // stay comparable across container rewrites; MemoryFootprintBytes is the
  // measured counterpart.
  std::uint64_t StorageBytes() const;
  // Measured bytes actually held by the compact lists and the timer wheel
  // (capacity, not live count). The lease-scale bench divides this by
  // TotalEntries() for its bytes_per_entry gate.
  std::uint64_t MemoryFootprintBytes() const;

  // --- expiry/renewal accounting (DESIGN §8 reconciliation) ---------------
  // Entries retired because their lease lapsed — by prune or by a take —
  // i.e. exactly the kLeaseExpiry emissions. Survives Clear() like the
  // accelerator's stats: it is measurement record, not server state.
  std::uint64_t leases_expired() const { return leases_expired_; }
  // Register calls that extended an existing live entry's lease.
  std::uint64_t lease_renewals() const { return lease_renewals_; }

  const LeaseConfig& lease_config() const { return lease_; }

  // Discards everything (server-site crash: the in-memory table dies).
  void Clear();

  // Optional tracing: when set, every entry dropped by PruneExpired or
  // found lapsed by a take emits a kLeaseExpiry event (detail = the expiry
  // that lapsed). nullptr disables.
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots occupancy into `registry` under `prefix` (entries,
  // max_list_length, storage_bytes, urls_tracked, leases_expired,
  // lease_renewals).
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  static constexpr std::uint64_t kPerEntryOverheadBytes = 16;
  static constexpr std::size_t kWheelSlots = 4096;

  // Appends `url`'s lapsed entries to `out` (unsorted; EmitLeaseExpiries
  // sorts) and erases them, charging leases_expired_. Used by the take
  // path — wheel-driven prune erases per entry as slots are visited.
  void ExpireListEntries(InternId url_id, Time now,
                         std::vector<ExpiredEntry>& out);

  void EmitLeaseExpiries(std::vector<ExpiredEntry>& expired, Time now);

  CompactSiteList* FindList(InternId url_id) {
    return url_id < lists_.size() && !lists_[url_id].empty()
               ? &lists_[url_id]
               : nullptr;
  }
  const CompactSiteList* FindList(InternId url_id) const {
    return const_cast<InvalidationTable*>(this)->FindList(url_id);
  }

  void ReleaseList(CompactSiteList& list) {
    list.Reset();
    --urls_tracked_;
  }

  LeaseConfig lease_;
  Interner urls_;
  Interner clients_;
  // Indexed by url id (dense, from urls_). Empty lists are not "tracked".
  std::vector<CompactSiteList> lists_;
  TimerWheel wheel_;
  std::size_t total_entries_ = 0;
  std::size_t urls_tracked_ = 0;
  std::uint64_t leases_expired_ = 0;
  std::uint64_t lease_renewals_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::core
