// N accelerator shards behind one facade.
//
// URLs are mapped onto shards with a consistent-hash ring (core::HashRing),
// so every operation keyed by URL — registration, notify, browser check,
// journal records — touches exactly one shard. Each shard is a complete
// core::Accelerator with its own invalidation table and its own checksummed
// write-ahead journal, which keeps crash recovery per-shard and parallel.
//
// The facade preserves the single-accelerator observable behavior at every
// shard count:
//
//  * a (url, site) list lives wholly inside one shard, so the invalidation
//    fan-out for any one modification is identical to the unsharded tier;
//  * cross-shard operations that emit events (lease pruning, recovery) are
//    merged and globally sorted here before emission, so the trace stream
//    is shard-count invariant;
//  * journal recovery rebuilds each shard from its own journal (phase 1),
//    then sequences the targeted-invalidation pass (phase 2) across shards
//    in global URL order — the union of the per-shard rebuilds is exactly
//    the table a single journal would have restored.
//
// One aggregate that is NOT shard-invariant: sitelist storage bytes. Each
// shard interns the site names it has seen, so a site caching documents on
// k shards is counted k times; DESIGN.md §11 discusses the bound.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/accelerator.h"
#include "core/hash_ring.h"
#include "http/document_store.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace webcc::core {

class ShardedAccelerator {
 public:
  ShardedAccelerator(const http::DocumentStore& store, LeaseConfig lease,
                     std::uint32_t num_shards = 1,
                     std::string server_name = "origin");

  std::uint32_t num_shards() const { return ring_.num_shards(); }
  std::uint32_t ShardOf(std::string_view url) const {
    return ring_.ShardOf(url);
  }
  Accelerator& shard(std::uint32_t index) { return *shards_[index]; }
  const Accelerator& shard(std::uint32_t index) const {
    return *shards_[index];
  }
  const std::string& server_name() const { return server_name_; }

  // --- URL-routed protocol operations (forwarded to ShardOf(url)) ----------
  std::optional<net::Reply> HandleRequest(const net::Request& request,
                                          Time now);
  std::vector<net::Invalidation> HandleNotify(const net::Notify& notify,
                                              Time now);
  std::vector<net::Invalidation> CheckDocument(std::string_view url, Time now);

  // --- failure handling -----------------------------------------------------
  void Crash();  // every shard's in-memory table dies together

  // Server-address broadcast over the union of the shards' site registries,
  // deduplicated and sorted — the same site set (and emission order) the
  // unsharded accelerator's registry would produce.
  std::vector<net::Invalidation> Recover();

  void EnableJournal(bool enabled);
  bool journal_enabled() const;

  struct RecoveryOutcome {
    std::vector<net::Invalidation> invalidations;
    bool journal_damaged = false;     // any shard's journal damaged
    std::size_t shards_damaged = 0;   // how many
    std::size_t records_applied = 0;
    std::size_t records_rejected = 0;
    std::size_t entries_restored = 0;
  };

  // Rebuilds every shard from its own journal, then produces recovery
  // invalidations. Any damaged shard journal degrades the whole recovery to
  // the server-address broadcast (the conservative choice matching the
  // unsharded tier: partial targeted recovery plus partial broadcast would
  // double-invalidate); all-intact journals yield targeted invalidations in
  // global URL order.
  RecoveryOutcome RecoverFromJournal(Time now);

  // --- cross-shard maintenance ---------------------------------------------
  // Prunes every shard, then emits the merged kLeaseExpiry stream in
  // (url, site) order — identical to the unsharded table's emission.
  std::size_t PruneExpired(Time now);

  // --- aggregates (Table 5 storage accounting, engine snapshots) -----------
  std::uint64_t StorageBytes() const;
  std::size_t TotalEntries() const;
  std::size_t MaxListLength() const;
  AcceleratorStats AggregateStats() const;

  // Merged (url, site)-sorted dump across shards; the fault tests compare
  // this across shard counts to prove recovery rebuilds the same union.
  std::vector<InvalidationTable::Snapshot> SnapshotEntries() const;

  void set_trace_sink(obs::TraceSink* sink);

  // One shard: exports exactly the unsharded accelerator's layout (counters
  // plus "<prefix>table."). N shards: aggregate counters under `prefix`,
  // plus each shard's full export under "<prefix>shard<i>.".
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  HashRing ring_;
  std::vector<std::unique_ptr<Accelerator>> shards_;
  std::string server_name_;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::core
