// Synthetic server-trace generator.
//
// Stands in for the Internet Traffic Archive logs the paper replays (the
// raw logs are not redistributable here). The generator produces a server
// trace with the summary statistics of the paper's Table 2: request volume
// and duration are exact; file-size and per-document client-popularity
// distributions are matched through a Zipf document-popularity model and a
// lognormal size model, calibrated per trace in trace/presets.cc.
#pragma once

#include <cstdint>

#include "trace/record.h"
#include "util/rng.h"

namespace webcc::trace {

struct WorkloadConfig {
  std::string name = "synthetic";
  Time duration = kDay;
  std::uint64_t total_requests = 10000;
  std::uint32_t num_documents = 1000;
  std::uint32_t num_clients = 500;

  // Lognormal document sizes.
  double mean_file_size_bytes = 16.0 * 1024;
  double file_size_sigma = 1.4;
  // Popular documents tend to be small (front pages are HTML; archives and
  // images populate the tail). A popularity-rank size multiplier of
  // ((rank+1)/n)^gamma * (1+gamma) preserves the per-file mean while
  // shrinking the transfer-weighted mean, matching the byte totals real
  // server logs show. 0 disables the correlation.
  double size_rank_gamma = 0.8;
  std::uint64_t min_file_size_bytes = 128;
  std::uint64_t max_file_size_bytes = 8 * 1024 * 1024;

  // Zipf exponents for document popularity and client activity. Higher
  // document skew concentrates requests (and distinct viewers) on the head
  // documents; NASA-like front-page traces want ~1.1, flat archives ~0.6.
  double doc_zipf_exponent = 0.8;
  double client_zipf_exponent = 0.6;

  // Probability that a request repeats the issuing client's previous
  // document instead of sampling fresh — models browsing locality (reload,
  // back-navigation) and lifts the per-client repeat fraction that the
  // per-client cache hit ratio depends on.
  double revisit_probability = 0.1;

  // Real logs concentrate repeat traffic on a small population of heavy
  // re-requesters (auto-refreshing front pages, monitors); the Section 6
  // two-tier results depend on most (client, document) pairs being
  // single-shot. This fraction of clients revisits with
  // heavy_revisit_probability instead of revisit_probability.
  double heavy_revisit_fraction = 0.1;
  double heavy_revisit_probability = 0.9;

  // Diurnal load modulation: request rate follows
  // 1 + diurnal_amplitude * sin(2*pi*t/day), clipped at >= 0.05.
  double diurnal_amplitude = 0.6;

  std::uint64_t seed = 1;
};

Trace GenerateTrace(const WorkloadConfig& config);

}  // namespace webcc::trace
