// Driver for the fuzz targets on toolchains without a libFuzzer runtime.
//
// Each fuzz_*.cc defines the standard libFuzzer entry point
// (LLVMFuzzerTestOneInput), so the same target file links against
// -fsanitize=fuzzer unchanged when a Clang toolchain is available. This
// main() supplies the two modes CI needs without that runtime:
//
//   fuzz_x corpus-dir...              replay every corpus file (regression)
//   fuzz_x corpus-dir --mutate N      plus N deterministic mutations of
//                    [--seed S]       corpus picks, seeded — not wall-clock
//                                     — so every run is reproducible.
//
// A finding is an abort (sanitizer report, WEBCC_CHECK, or a target's
// __builtin_trap on a broken invariant); a clean sweep exits 0.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Bytes = std::vector<std::uint8_t>;

void RunOne(const Bytes& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

// One seeded mutation: flip, overwrite, insert, erase, truncate, or splice
// a chunk from elsewhere in the input.
Bytes Mutate(Bytes input, webcc::util::Rng& rng) {
  const int rounds = 1 + static_cast<int>(rng.NextU64() % 8);
  for (int i = 0; i < rounds; ++i) {
    switch (rng.NextU64() % 6) {
      case 0:  // bit flip
        if (!input.empty()) {
          input[rng.NextU64() % input.size()] ^=
              static_cast<std::uint8_t>(1u << (rng.NextU64() % 8));
        }
        break;
      case 1:  // overwrite with a random byte
        if (!input.empty()) {
          input[rng.NextU64() % input.size()] =
              static_cast<std::uint8_t>(rng.NextU64());
        }
        break;
      case 2:  // insert a random byte
        input.insert(input.begin() +
                         static_cast<std::ptrdiff_t>(
                             input.empty() ? 0 : rng.NextU64() % input.size()),
                     static_cast<std::uint8_t>(rng.NextU64()));
        break;
      case 3:  // erase a byte
        if (!input.empty()) {
          input.erase(input.begin() +
                      static_cast<std::ptrdiff_t>(rng.NextU64() %
                                                  input.size()));
        }
        break;
      case 4:  // truncate
        if (!input.empty()) input.resize(rng.NextU64() % input.size());
        break;
      case 5:  // duplicate a chunk to a random spot
        if (input.size() >= 2) {
          const std::size_t from = rng.NextU64() % input.size();
          const std::size_t len =
              1 + rng.NextU64() % std::min<std::size_t>(
                                      16, input.size() - from);
          const std::size_t to = rng.NextU64() % input.size();
          const Bytes chunk(input.begin() + static_cast<std::ptrdiff_t>(from),
                            input.begin() +
                                static_cast<std::ptrdiff_t>(from + len));
          input.insert(input.begin() + static_cast<std::ptrdiff_t>(to),
                       chunk.begin(), chunk.end());
        }
        break;
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::uint64_t mutations = 0;
  std::uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate" && i + 1 < argc) {
      mutations = std::stoull(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: " << argv[0]
                << " [--mutate N] [--seed S] <corpus-file-or-dir>...\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  std::vector<Bytes> corpus;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::cerr << argv[0] << ": cannot open " << file << "\n";
      return 2;
    }
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    RunOne(bytes);
    corpus.push_back(std::move(bytes));
  }
  if (corpus.empty()) corpus.push_back({});  // always exercise empty input

  webcc::util::Rng rng(seed);
  for (std::uint64_t i = 0; i < mutations; ++i) {
    RunOne(Mutate(corpus[rng.NextU64() % corpus.size()], rng));
  }

  std::cout << argv[0] << ": " << files.size() << " corpus inputs + "
            << mutations << " mutations, no findings\n";
  return 0;
}
