#include "tokenizer.h"

#include <cctype>

namespace webcc::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators the passes care about, longest first.
// (Three-char forms must precede their two-char prefixes.)
constexpr std::string_view kPuncts[] = {
    "...", "->*", "<<=", ">>=", "::", "->", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||",  "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",  "##",
};

struct Lexer {
  std::string_view text;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  bool at_line_start = true;  // only whitespace seen on this line so far

  char Peek(std::size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }

  void Advance(std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < text.size(); ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
        if (!std::isspace(static_cast<unsigned char>(text[i]))) {
          at_line_start = false;
        }
      }
    }
  }

  // Consumes i..end (exclusive) into a token of `kind`.
  Token Take(TokKind kind, std::size_t end, int tok_line, int tok_col) {
    Token t{kind, std::string(text.substr(i, end - i)), tok_line, tok_col};
    Advance(end - i);
    return t;
  }

  // `i` sits on the opening quote; returns one past the closing quote.
  std::size_t ScanQuoted(char quote) const {
    std::size_t j = i + 1;
    while (j < text.size() && text[j] != quote && text[j] != '\n') {
      if (text[j] == '\\' && j + 1 < text.size()) ++j;
      ++j;
    }
    return j < text.size() && text[j] == quote ? j + 1 : j;
  }

  // `i` sits on the `R` of R"delim( ; returns one past the closing "quote.
  std::size_t ScanRawString() const {
    std::size_t j = i + 2;  // past R"
    std::string delim;
    while (j < text.size() && text[j] != '(' && text[j] != '"' &&
           text[j] != '\n' && delim.size() < 16) {
      delim += text[j++];
    }
    if (j >= text.size() || text[j] != '(') return j;  // malformed; degrade
    const std::string close = ")" + delim + "\"";
    const std::size_t end = text.find(close, j + 1);
    return end == std::string_view::npos ? text.size() : end + close.size();
  }
};

}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> out;
  Lexer lx{text};
  while (lx.i < text.size()) {
    const char c = lx.Peek();
    const int tl = lx.line, tc = lx.col;

    if (std::isspace(static_cast<unsigned char>(c))) {
      lx.Advance();
      continue;
    }

    // Preprocessor logical line: `#` first on the line, `\` splices.
    if (c == '#' && lx.at_line_start) {
      std::size_t j = lx.i;
      while (j < text.size()) {
        if (text[j] == '\n') {
          if (j > lx.i && text[j - 1] == '\\') {
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      out.push_back(lx.Take(TokKind::kPreproc, j, tl, tc));
      continue;
    }

    // Comments.
    if (c == '/' && lx.Peek(1) == '/') {
      std::size_t j = text.find('\n', lx.i);
      if (j == std::string_view::npos) j = text.size();
      out.push_back(lx.Take(TokKind::kComment, j, tl, tc));
      continue;
    }
    if (c == '/' && lx.Peek(1) == '*') {
      std::size_t j = text.find("*/", lx.i + 2);
      j = (j == std::string_view::npos) ? text.size() : j + 2;
      out.push_back(lx.Take(TokKind::kComment, j, tl, tc));
      continue;
    }

    // Identifiers — including string-literal prefixes (R"...", u8"...").
    if (IsIdentStart(c)) {
      std::size_t j = lx.i;
      while (j < text.size() && IsIdentChar(text[j])) ++j;
      const std::string_view word = text.substr(lx.i, j - lx.i);
      const char next = j < text.size() ? text[j] : '\0';
      if (next == '"' &&
          (word == "R" || word == "uR" || word == "u8R" || word == "UR" ||
           word == "LR")) {
        // Re-anchor the raw-string scan at the prefix.
        Lexer probe = lx;
        probe.i = j - 1;  // ScanRawString expects i on the char before `"`
        out.push_back(
            lx.Take(TokKind::kString, probe.ScanRawString(), tl, tc));
        continue;
      }
      if ((next == '"' || next == '\'') &&
          (word == "u8" || word == "u" || word == "U" || word == "L")) {
        Lexer probe = lx;
        probe.i = j;
        out.push_back(lx.Take(next == '"' ? TokKind::kString : TokKind::kChar,
                              probe.ScanQuoted(next), tl, tc));
        continue;
      }
      out.push_back(lx.Take(TokKind::kIdent, j, tl, tc));
      continue;
    }

    // Numbers (also `.5`); digit separators and exponent signs included.
    if (IsDigit(c) || (c == '.' && IsDigit(lx.Peek(1)))) {
      std::size_t j = lx.i;
      while (j < text.size()) {
        const char d = text[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < text.size() && IsIdentChar(text[j + 1])) {
          ++j;  // digit separator
        } else if ((d == '+' || d == '-') && j > lx.i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      out.push_back(lx.Take(TokKind::kNumber, j, tl, tc));
      continue;
    }

    // String / char literals.
    if (c == '"') {
      out.push_back(lx.Take(TokKind::kString, lx.ScanQuoted('"'), tl, tc));
      continue;
    }
    if (c == '\'') {
      out.push_back(lx.Take(TokKind::kChar, lx.ScanQuoted('\''), tl, tc));
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const std::string_view p : kPuncts) {
      if (text.compare(lx.i, p.size(), p) == 0) {
        out.push_back(lx.Take(TokKind::kPunct, lx.i + p.size(), tl, tc));
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.push_back(lx.Take(TokKind::kPunct, lx.i + 1, tl, tc));
    }
  }
  return out;
}

}  // namespace webcc::lint
