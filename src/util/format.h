// Small formatting helpers shared by benches, examples and logs.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"

namespace webcc::util {

// 12345678 -> "11.8MB"; keeps three significant digits.
std::string HumanBytes(std::uint64_t bytes);

// 90061000000us -> "1d1h1m1s"; truncates below seconds unless sub-second.
std::string HumanDuration(Time t);

// Fixed-point with the given number of decimals, e.g. (3.14159, 2)->"3.14".
std::string Fixed(double value, int decimals);

// Thousands separators: 1234567 -> "1,234,567".
std::string WithCommas(std::int64_t value);

}  // namespace webcc::util
