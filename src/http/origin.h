// Origin web server logic and service costs.
//
// OriginServer is the pure protocol half of the pseudo-server (the NCSA
// HTTPD of the paper's testbed): it answers GET with a 200 and
// If-Modified-Since with a 200 or 304 against the document store. Leases and
// invalidation live in the accelerator (core/accelerator.h), which wraps
// these replies. ServerCosts quantifies what each operation charges to the
// server's CPU and disk stations during a replay.
#pragma once

#include <cstdint>
#include <optional>

#include "http/document_store.h"
#include "net/message.h"
#include "util/time.h"

namespace webcc::http {

// Service costs at the pseudo-server. Defaults are calibrated so the replay
// lands in the paper's utilization band (roughly 26-42% server CPU and a few
// disk ops per second); like the paper's iostat figures, absolute values
// only matter for comparison across protocols.
struct ServerCosts {
  // CPU to parse + serve a request that returns a body (200).
  Time request_cpu_200 = 150 * kMillisecond;
  // CPU for a validation that returns 304 (no body work).
  Time request_cpu_304 = 75 * kMillisecond;
  // CPU to process a check-in notification from the modifier.
  Time notify_cpu = 20 * kMillisecond;
  // CPU to build + push one INVALIDATE message onto a TCP connection. The
  // paper's accelerator pays this serially for every site in the list.
  Time invalidation_send_cpu = 25 * kMillisecond;
  // Disk service time per operation (the access log write every request, and
  // the file read behind each 200).
  Time disk_op = 8 * kMillisecond;
  // CPU per piggybacked item processed (PCV bulk validation / PSI change
  // list assembly).
  Time piggyback_item_cpu = 2 * kMillisecond;
};

class OriginServer {
 public:
  explicit OriginServer(const DocumentStore& store) : store_(&store) {}

  // Answers a GET or IMS at protocol (trace) time `now`. Returns
  // std::nullopt when the URL does not exist (the replay's traces only
  // reference known documents, but live mode can see arbitrary URLs).
  // The reply's lease_until is kNoLease; the accelerator stamps leases.
  std::optional<net::Reply> Handle(const net::Request& request,
                                   Time now) const;

 private:
  const DocumentStore* store_;
};

}  // namespace webcc::http
