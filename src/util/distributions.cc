#include "util/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace webcc::util {

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent)
    : exponent_(exponent) {
  WEBCC_CHECK_MSG(n > 0, "Zipf needs at least one rank");
  WEBCC_CHECK_MSG(exponent >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(std::size_t rank) const {
  WEBCC_CHECK(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double SampleExponential(Rng& rng, double mean) {
  WEBCC_DCHECK(mean > 0.0);
  // 1 - u avoids log(0); u in [0,1) so 1-u in (0,1].
  return -mean * std::log1p(-rng.NextDouble());
}

double SampleStandardNormal(Rng& rng) {
  // Box-Muller; draw u1 away from zero to keep log finite.
  double u1;
  do {
    u1 = rng.NextDouble();
  } while (u1 <= 0.0);
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double SampleLognormal(Rng& rng, double mean, double sigma) {
  WEBCC_DCHECK(mean > 0.0);
  // For LogNormal(mu, sigma), E[X] = exp(mu + sigma^2/2); solve for mu.
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  return std::exp(mu + sigma * SampleStandardNormal(rng));
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double>& weights) {
  WEBCC_CHECK_MSG(!weights.empty(), "empty weight vector");
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    WEBCC_CHECK_MSG(weights[i] >= 0.0, "negative weight");
    total += weights[i];
    cdf_[i] = total;
  }
  WEBCC_CHECK_MSG(total > 0.0, "all-zero weight vector");
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace webcc::util
