// Lazy-deletion TTL expiry heap shared by the cache's TakeExpired sweep
// (PCV's invalid-cache view) and the expired-first eviction policy.
//
// Records are never removed in place: SetTtlExpiry and entry removal leave
// the old record behind, and readers skip records whose (key, stamp) no
// longer names a live entry. That keeps every push O(log n) but — the PR 8
// satellite bug — lets a renew-heavy workload grow the heap without bound
// (each renewal leaks one stale record). The heap therefore counts its live
// records exactly (the owner tells it when a record goes stale) and
// CompactIfStale rebuilds once stale records outnumber live ones, bounding
// the heap at 2x the resident entry count (with a small floor so tiny
// caches never bother). Compaction only drops records a pop would have
// skipped anyway, so pop order — and thus eviction and TakeExpired order —
// is unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/intern.h"
#include "util/time.h"

namespace webcc::http::eviction {

struct ExpiryRecord {
  Time expires = 0;
  std::uint64_t stamp = 0;
  core::InternId key = core::kNoInternId;
};

class ExpiryHeap {
 public:
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  std::size_t live() const { return live_; }

  const ExpiryRecord& Top() const { return records_.front(); }

  void Push(Time expires, std::uint64_t stamp, core::InternId key) {
    records_.push_back(ExpiryRecord{expires, stamp, key});
    std::push_heap(records_.begin(), records_.end(), Later);
    ++live_;
  }

  // Pops the top record, which the caller verified names a live entry (the
  // record is consumed: TakeExpired collects the entry, or the expired-first
  // policy evicts it).
  void PopLive() {
    Pop();
    --live_;
  }

  // Pops a top record already known stale (its live count was decremented
  // by NoteStale when it went stale).
  void PopStale() { Pop(); }

  // A record for `key` somewhere in the heap just went stale: the entry was
  // removed or restamped by a new push. No-op for the owner to call when the
  // record was already consumed.
  void NoteStale() { --live_; }

  // Rebuilds the heap keeping only records `is_live` accepts, when stale
  // records outnumber live ones. The owner passes its index check; the
  // result has live_ == size(). Cheap to call on every mutation: the
  // threshold makes the amortized cost O(1) per stale record.
  template <typename IsLive>
  void CompactIfStale(IsLive&& is_live) {
    if (records_.size() < kCompactFloor || records_.size() <= 2 * live_) {
      return;
    }
    auto keep = records_.begin();
    for (const ExpiryRecord& r : records_) {
      if (is_live(r)) *keep++ = r;
    }
    records_.erase(keep, records_.end());
    std::make_heap(records_.begin(), records_.end(), Later);
    live_ = records_.size();
  }

 private:
  // Min-heap by (expires, stamp): `Later` orders the earliest expiry (ties
  // to the older stamp) at the front, matching the pre-kernel
  // TtlHeapItem::operator> exactly.
  static bool Later(const ExpiryRecord& a, const ExpiryRecord& b) {
    if (a.expires != b.expires) return a.expires > b.expires;
    return a.stamp > b.stamp;
  }

  void Pop() {
    std::pop_heap(records_.begin(), records_.end(), Later);
    records_.pop_back();
  }

  static constexpr std::size_t kCompactFloor = 64;

  std::vector<ExpiryRecord> records_;
  std::size_t live_ = 0;
};

}  // namespace webcc::http::eviction
