// Consistency-approach selection and shared policy configuration.
#pragma once

#include "util/time.h"

namespace webcc::core {

// The three consistency approaches the paper compares, plus the two
// piggyback schemes from the follow-on literature (see core/piggyback.h),
// which layer freshness exchange on top of adaptive TTL.
enum class Protocol {
  kAdaptiveTtl,     // weak: Alex protocol, TTL = fraction of document age
  kPollEveryTime,   // strong: If-Modified-Since on every cache hit
  kInvalidation,    // strong: server-driven INVALIDATE callbacks
  kPiggybackValidation,    // weak: TTL + bulk validation on misses (PCV)
  kPiggybackInvalidation,  // weak: TTL + per-contact change lists (PSI)
};

const char* ToString(Protocol protocol);

// Adaptive TTL (Alex protocol). A validated document whose age is A gets
// TTL = clamp(factor * A, min_ttl, max_ttl): old files are assumed stable,
// young files volatile (file lifetimes are bimodal).
struct AdaptiveTtlConfig {
  double factor = 0.2;
  Time min_ttl = 1 * kMinute;
  Time max_ttl = 30 * kDay;
};

enum class LeaseMode {
  kNone,     // plain invalidation: sites are remembered forever
  kFixed,    // every reply carries a `duration` lease
  kTwoTier,  // GET earns `short_duration`, IMS earns `duration` (Section 6)
};

const char* ToString(LeaseMode mode);

struct LeaseConfig {
  LeaseMode mode = LeaseMode::kNone;
  Time duration = 3 * kDay;
  Time short_duration = 0;
};

}  // namespace webcc::core
