#include "live/live_proxy.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "http/cache_key.h"
#include "live/live_server.h"
#include "net/wire.h"
#include "util/log.h"

namespace webcc::live {
namespace {

// Snapshot of a cached copy's consistency state for the kernel.
core::consistency::EntryMeta MetaOf(const http::CacheEntry& entry) {
  core::consistency::EntryMeta meta;
  meta.last_modified = entry.last_modified;
  meta.fetched_at = entry.fetched_at;
  meta.ttl_expires = entry.ttl_expires;
  meta.lease_expires = entry.lease_expires;
  meta.questionable = entry.questionable;
  return meta;
}

core::consistency::ReplyMeta MetaOf(const net::Reply& reply) {
  core::consistency::ReplyMeta meta;
  meta.last_modified = reply.last_modified;
  meta.lease_until = reply.lease_until;
  return meta;
}

}  // namespace

LiveProxy::LiveProxy(Options options)
    : options_(std::move(options)),
      policy_(core::consistency::MakePolicy(options_.protocol, options_.ttl)) {}

LiveProxy::~LiveProxy() { Stop(); }

bool LiveProxy::Start() {
  listener_.emplace(options_.port);
  if (!listener_->valid()) return false;
  port_ = listener_->port();
  {
    const util::MutexLock lock(mutex_);
    cache_.emplace(options_.cache_bytes, options_.eviction_policy,
                   options_.cache_tier);
    cache_->set_trace_sink(options_.trace_sink);  // eviction events
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void LiveProxy::Stop() {
  if (!running_.exchange(false)) return;
  listener_->Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
}

Time LiveProxy::Now() const {
  // Unix-epoch microseconds: server and proxy clocks must agree because
  // lease expiries and modification times cross the wire.
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::size_t LiveProxy::cached_entries() const {
  const util::MutexLock lock(mutex_);
  return cache_->entry_count();
}

void LiveProxy::SimulateRecovery() {
  const util::MutexLock lock(mutex_);
  cache_->MarkAllQuestionable();
}

LiveProxy::FetchResult LiveProxy::Fetch(const std::string& client_name,
                                        const std::string& url) {
  const std::string client_id = MakeClientId(client_name, port_);
  const std::string key = http::ComposeCacheKey(url, client_id);
  const Time now = Now();
  const core::consistency::Traits& traits = policy_->traits();

  net::Request request;
  request.url = url;
  request.client_id = client_id;
  request.type = net::MessageType::kGet;
  bool lease_renewal = false;

  {
    const util::MutexLock lock(mutex_);
    http::CacheEntry* entry = cache_->Lookup(key, now);
    if (entry != nullptr) {
      const core::consistency::HitDecision decision =
          policy_->OnHit(MetaOf(*entry), now);
      if (decision.action == core::consistency::HitAction::kServeLocal) {
        obs::Emit(options_.trace_sink,
                  {.type = obs::EventType::kRequestServed,
                   .at = now,
                   .url = url,
                   .site = client_id,
                   .detail = static_cast<std::int64_t>(obs::ServeKind::kLocalHit)});
        FetchResult result;
        result.ok = true;
        result.local_hit = true;
        result.version = entry->version;
        result.size_bytes = entry->size_bytes;
        return result;
      }
      lease_renewal = decision.lease_renewal;
      request.type = net::MessageType::kIfModifiedSince;
      request.if_modified_since = entry->last_modified;
    }

    // PCV: since we are contacting the server anyway, piggyback a batch of
    // this proxy's TTL-expired entries for bulk validation.
    if (traits.piggyback_validation) {
      for (http::CacheEntry* expired : cache_->TakeExpired(
               now, options_.piggyback.max_validations_per_request)) {
        if (expired->key == key) {
          // The request itself validates this entry; leave it indexed.
          cache_->SetTtlExpiry(*expired, expired->ttl_expires);
          continue;
        }
        request.pcv_queries.push_back(net::PcvQuery{
            expired->url, expired->owner, expired->last_modified});
      }
    }
  }

  obs::Emit(options_.trace_sink,
            request.type == net::MessageType::kGet
                ? obs::TraceEvent{.type = obs::EventType::kGetSent,
                                  .at = now,
                                  .url = url,
                                  .site = client_id}
                : obs::TraceEvent{.type = obs::EventType::kImsSent,
                                  .at = now,
                                  .url = url,
                                  .site = client_id,
                                  .detail = lease_renewal ? 1 : 0});

  const std::optional<std::string> reply_line =
      Exchange(options_.server_port, net::EncodeLine(request));
  if (!reply_line.has_value()) return FetchResult{};
  const std::optional<net::Message> message = net::DecodeLine(*reply_line);
  if (!message.has_value()) return FetchResult{};
  const auto* reply = std::get_if<net::Reply>(&*message);
  if (reply == nullptr) return FetchResult{};

  FetchResult result;
  result.ok = true;
  result.version = reply->version;

  obs::Emit(options_.trace_sink,
            {.type = obs::EventType::kRequestServed,
             .at = now,
             .url = url,
             .site = client_id,
             .detail = static_cast<std::int64_t>(
                 reply->type == net::MessageType::kReply200
                     ? obs::ServeKind::kTransfer
                     : obs::ServeKind::kValidated)});

  const util::MutexLock lock(mutex_);

  // Apply the reply's piggyback freshness information first, so a
  // just-fetched body is inserted after any purge of its URL (the replay's
  // ApplyPiggyback runs before DeliverReply for the same reason).
  if (!reply->pcv_invalid.empty() || !request.pcv_queries.empty()) {
    std::unordered_set<std::string> invalid_keys;
    for (const net::PcvStale& stale : reply->pcv_invalid) {
      const std::string stale_key =
          http::ComposeCacheKey(stale.url, stale.owner);
      if (cache_->Erase(stale_key)) pcv_invalidated_.fetch_add(1);
      invalid_keys.insert(stale_key);
    }
    // Entries the server did not flag are certified valid: re-arm their TTL.
    for (const net::PcvQuery& query : request.pcv_queries) {
      const std::string query_key =
          http::ComposeCacheKey(query.url, query.owner);
      if (invalid_keys.count(query_key) != 0) continue;
      http::CacheEntry* entry = cache_->Peek(query_key);
      if (entry == nullptr) continue;  // evicted while we were on the wire
      cache_->SetTtlExpiry(*entry, policy_->OnPcvValid(MetaOf(*entry), now));
    }
  }
  for (const std::string& modified : reply->psi_modified) {
    psi_purged_.fetch_add(cache_->EraseByUrl(modified));
  }

  if (reply->type == net::MessageType::kReply200) {
    const core::consistency::InsertDecision decision =
        policy_->OnMissReply(MetaOf(*reply), now);
    http::CacheEntry entry;
    entry.key = key;
    entry.url = url;
    entry.owner = client_id;
    entry.size_bytes = reply->body_bytes;
    entry.last_modified = reply->last_modified;
    entry.version = reply->version;
    entry.fetched_at = now;
    entry.ttl_expires = decision.ttl_expires;
    entry.lease_expires = decision.lease_expires;
    result.size_bytes = entry.size_bytes;
    cache_->Insert(std::move(entry), now);
  } else {
    result.validated = true;
    http::CacheEntry* entry = cache_->Peek(key);
    if (entry != nullptr) {
      const core::consistency::ValidateDecision decision =
          policy_->OnValidateReply(MetaOf(*reply), now);
      if (decision.clear_questionable) entry->questionable = false;
      if (decision.set_ttl) cache_->SetTtlExpiry(*entry, decision.ttl_expires);
      if (decision.set_lease) entry->lease_expires = decision.lease_expires;
      result.size_bytes = entry->size_bytes;
      result.version = entry->version;
    }
  }
  return result;
}

void LiveProxy::AcceptLoop() {
  while (running_.load()) {
    TcpStream stream = listener_->Accept();
    if (!stream.valid()) {
      if (!running_.load()) return;
      continue;
    }
    stream.SetReadTimeout(5000);
    const std::optional<std::string> line = stream.ReadLine();
    if (!line.has_value()) continue;
    const std::optional<net::Message> message = net::DecodeLine(*line);
    if (!message.has_value()) continue;
    // A proxy running a protocol without invalidation callbacks predates
    // the INVALIDATE extension and ignores such messages, as the paper's
    // weak-consistency baselines do.
    if (const auto* batch = std::get_if<net::BatchInvalidation>(&*message)) {
      if (!policy_->traits().invalidation_callbacks) continue;
      // A batched frame is semantically the list of single invalidations it
      // carries: same per-URL purge, counter and delivery event as if each
      // URL had arrived on its own connection.
      const util::MutexLock lock(mutex_);
      for (const std::string& url : batch->urls) {
        cache_->Erase(http::ComposeCacheKey(url, batch->client_id));
        invalidations_received_.fetch_add(1);
        obs::Emit(options_.trace_sink,
                  {.type = obs::EventType::kInvalidateDelivered,
                   .at = Now(),
                   .url = url,
                   .site = batch->client_id});
      }
      continue;
    }
    const auto* invalidation = std::get_if<net::Invalidation>(&*message);
    if (invalidation == nullptr) continue;
    if (!policy_->traits().invalidation_callbacks) continue;

    const util::MutexLock lock(mutex_);
    if (invalidation->type == net::MessageType::kInvalidateUrl) {
      cache_->Erase(
          http::ComposeCacheKey(invalidation->url, invalidation->client_id));
      invalidations_received_.fetch_add(1);
      obs::Emit(options_.trace_sink,
                {.type = obs::EventType::kInvalidateDelivered,
                 .at = Now(),
                 .url = invalidation->url,
                 .site = invalidation->client_id});
    } else {
      // Server-address invalidation: the recovering server cannot know what
      // changed while it was down, so every copy of its documents at this
      // site becomes questionable (the wire message carries no client; with
      // a single origin that is this proxy's whole cache).
      cache_->MarkAllQuestionable();
      server_notices_received_.fetch_add(1);
    }
  }
}

}  // namespace webcc::live
