// Unit tests for stats/: latency aggregation, utilization, table rendering.
#include <gtest/gtest.h>

#include <string>

#include "stats/latency.h"
#include "stats/table.h"
#include "stats/utilization.h"

namespace webcc::stats {
namespace {

// --- LatencyStats --------------------------------------------------------------

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 0.0);
}

TEST(LatencyStats, SingleSample) {
  LatencyStats stats;
  stats.Record(4.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.min(), 4.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 4.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 4.5);
}

TEST(LatencyStats, MinMaxMean) {
  LatencyStats stats;
  for (double v : {3.0, 1.0, 2.0}) stats.Record(v);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
}

TEST(LatencyStats, PercentilesExact) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.Record(i);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 100.0);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(stats.Percentile(99), 99.01, 0.01);
}

TEST(LatencyStats, RecordAfterPercentileKeepsSorting) {
  LatencyStats stats;
  stats.Record(2.0);
  stats.Record(1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 2.0);
  stats.Record(0.5);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 0.5);
}

TEST(LatencyStats, SampleCapBoundsMemoryNotAggregates) {
  LatencyStats stats(/*max_samples=*/10);
  for (int i = 1; i <= 1000; ++i) stats.Record(i);
  EXPECT_EQ(stats.count(), 1000u);
  EXPECT_DOUBLE_EQ(stats.max(), 1000.0);  // exact despite the cap
  EXPECT_DOUBLE_EQ(stats.mean(), 500.5);
}

TEST(LatencyStats, MergeCombines) {
  LatencyStats a;
  LatencyStats b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(10.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_NEAR(a.mean(), 13.0 / 3, 1e-9);
}

TEST(LatencyStats, MergeEmptyIsNoop) {
  LatencyStats a;
  a.Record(5.0);
  LatencyStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.min(), 5.0);
}

// --- Utilization ------------------------------------------------------------------

TEST(Utilization, BusyFraction) {
  Utilization util;
  util.AddBusy(30 * kSecond);
  EXPECT_DOUBLE_EQ(util.BusyFraction(60 * kSecond), 0.5);
}

TEST(Utilization, BusyFractionSaturatesAtOne) {
  Utilization util;
  util.AddBusy(100 * kSecond);
  EXPECT_DOUBLE_EQ(util.BusyFraction(10 * kSecond), 1.0);
}

TEST(Utilization, ZeroElapsedIsZero) {
  Utilization util;
  util.AddBusy(kSecond);
  EXPECT_DOUBLE_EQ(util.BusyFraction(0), 0.0);
  EXPECT_DOUBLE_EQ(util.ReadsPerSecond(0), 0.0);
}

TEST(Utilization, OperationRates) {
  Utilization util;
  for (int i = 0; i < 30; ++i) util.AddRead();
  for (int i = 0; i < 10; ++i) util.AddWrite();
  EXPECT_DOUBLE_EQ(util.ReadsPerSecond(10 * kSecond), 3.0);
  EXPECT_DOUBLE_EQ(util.WritesPerSecond(10 * kSecond), 1.0);
  EXPECT_EQ(util.reads(), 30u);
  EXPECT_EQ(util.writes(), 10u);
}

// --- Table ------------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table table({"Metric", "A", "B"});
  table.AddRow({"hits", "10", "20"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("Metric"), std::string::npos);
  EXPECT_NE(out.find("hits"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table table({"M", "Value"});
  table.AddRow({"long-metric-name", "1"});
  table.AddRow({"x", "12345678"});
  const std::string out = table.Render();
  // Every line has the same width.
  std::size_t expected = out.find('\n');
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(Table, SeparatorRendersRule) {
  Table table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.Render();
  // Header rule + explicit separator = at least two all-dash lines.
  int rules = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::string line = out.substr(start, end - start);
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) {
      ++rules;
    }
    start = end + 1;
  }
  EXPECT_GE(rules, 2);
}

}  // namespace
}  // namespace webcc::stats
