#include "replay/metrics.h"

#include <cstdio>

#include "util/format.h"

namespace webcc::replay {

std::string ReplayMetrics::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu hits=%llu (local=%llu validated=%llu) msgs=%llu "
      "bytes=%s lat(avg/min/max ms)=%.1f/%.1f/%.1f cpu=%.1f%% stale=%llu "
      "violations=%llu",
      static_cast<unsigned long long>(requests_issued),
      static_cast<unsigned long long>(cache_hits()),
      static_cast<unsigned long long>(local_hits),
      static_cast<unsigned long long>(validated_hits),
      static_cast<unsigned long long>(total_messages()),
      util::HumanBytes(message_bytes).c_str(), latency_ms.mean(),
      latency_ms.min(), latency_ms.max(), server_cpu_utilization * 100.0,
      static_cast<unsigned long long>(stale_serves),
      static_cast<unsigned long long>(strong_violations));
  return buf;
}

void ReplayMetrics::ExportTo(obs::MetricsRegistry& registry) const {
  // Counters: every Tables 3/4/5 column plus the exact staleness accounting.
  registry.SetCounter("replay.get_requests", get_requests);
  registry.SetCounter("replay.ims_requests", ims_requests);
  registry.SetCounter("replay.replies_200", replies_200);
  registry.SetCounter("replay.replies_304", replies_304);
  registry.SetCounter("replay.invalidations_sent", invalidations_sent);
  registry.SetCounter("replay.invsrv_sent", invsrv_sent);
  registry.SetCounter("replay.multicast_sends", multicast_sends);
  registry.SetCounter("replay.invalidation_frames_sent",
                      invalidation_frames_sent);
  registry.SetCounter("replay.invalidations_coalesced",
                      invalidations_coalesced);
  registry.SetCounter("replay.inval_sender_busy_max_us",
                      inval_sender_busy_max_us);
  registry.SetCounter("replay.inval_sender_busy_total_us",
                      inval_sender_busy_total_us);
  registry.SetCounter("replay.message_bytes", message_bytes);
  registry.SetCounter("replay.local_hits", local_hits);
  registry.SetCounter("replay.validated_hits", validated_hits);
  registry.SetCounter("replay.cache_hits", cache_hits());
  registry.SetCounter("replay.invalidation_messages",
                      invalidation_messages());
  registry.SetCounter("replay.total_messages", total_messages());
  registry.SetCounter("replay.stale_serves", stale_serves);
  registry.SetCounter("replay.stale_while_invalidation_in_flight",
                      stale_while_invalidation_in_flight);
  registry.SetCounter("replay.strong_violations", strong_violations);
  registry.SetCounter("replay.sitelist_storage_bytes", sitelist_storage_bytes);
  registry.SetCounter("replay.sitelist_entries", sitelist_entries);
  registry.SetCounter("replay.sitelist_max_len_end", sitelist_max_len_end);
  registry.SetCounter("replay.sitelist_max_len_at_mod",
                      sitelist_max_len_at_mod);
  registry.SetCounter("replay.parent_hits", parent_hits);
  registry.SetCounter("replay.parent_fetches", parent_fetches);
  registry.SetCounter("replay.hierarchy_forwards", hierarchy_forwards);
  registry.SetCounter("replay.pcv_items_piggybacked", pcv_items_piggybacked);
  registry.SetCounter("replay.pcv_invalidated", pcv_invalidated);
  registry.SetCounter("replay.psi_notices", psi_notices);
  registry.SetCounter("replay.psi_entries_erased", psi_entries_erased);
  registry.SetCounter("replay.lease_renewal_ims", lease_renewal_ims);
  registry.SetCounter("replay.write_completions", write_completions);
  registry.SetCounter("replay.write_lease_expired_completions",
                      write_lease_expired_completions);
  registry.SetCounter("replay.recovery_invalidations_sent",
                      recovery_invalidations_sent);
  registry.SetCounter("replay.journal_rebuilds", journal_rebuilds);
  registry.SetCounter("replay.journal_damaged_recoveries",
                      journal_damaged_recoveries);
  registry.SetCounter("replay.injected_drops", injected_drops);
  registry.SetCounter("replay.injected_dups", injected_dups);
  registry.SetCounter("replay.injected_delays", injected_delays);
  registry.SetCounter("replay.requests_issued", requests_issued);
  registry.SetCounter("replay.requests_skipped", requests_skipped);
  registry.SetCounter("replay.request_timeouts", request_timeouts);
  registry.SetCounter("replay.modifications_applied", modifications_applied);
  registry.SetCounter("replay.invalidations_delivered",
                      invalidations_delivered);
  registry.SetCounter("replay.invalidations_refused", invalidations_refused);
  registry.SetCounter("replay.proxy_evictions", proxy_evictions);
  registry.SetCounter("replay.proxy_expired_evictions",
                      proxy_expired_evictions);
  registry.SetCounter("replay.proxy_oversize_rejections",
                      proxy_oversize_rejections);
  registry.SetCounter("replay.proxy_tier2_promotions", proxy_tier2_promotions);
  registry.SetCounter("replay.proxy_tier2_demotions", proxy_tier2_demotions);
  registry.SetCounter("replay.sim_events_executed", sim_events_executed);
  registry.SetCounter("replay.sim_peak_queue_depth", sim_peak_queue_depth);

  // Gauges: ratios, utilizations and the host-time rates (the only
  // nondeterministic entries, mirroring SameSimulation's exclusions).
  registry.SetGauge("replay.server_cpu_utilization", server_cpu_utilization);
  registry.SetGauge("replay.disk_reads_per_second", disk_reads_per_second);
  registry.SetGauge("replay.disk_writes_per_second", disk_writes_per_second);
  registry.SetGauge("replay.wall_duration_us",
                    static_cast<double>(wall_duration));
  registry.SetGauge("replay.sitelist_avg_len_at_mod", sitelist_avg_len_at_mod);
  registry.SetGauge("replay.host_seconds", host_seconds);

  // Distributions.
  registry.FindOrCreateHistogram("replay.latency_ms")->samples.Merge(
      latency_ms);
  registry.FindOrCreateHistogram("replay.invalidation_time_ms")
      ->samples.Merge(invalidation_time_ms);
  registry.FindOrCreateHistogram("replay.batch_flush_ms")
      ->samples.Merge(batch_flush_ms);
  registry.FindOrCreateHistogram("replay.write_completion_wall_ms")
      ->samples.Merge(write_completion_wall_ms);
  registry.FindOrCreateHistogram("replay.write_blocked_trace_ms")
      ->samples.Merge(write_blocked_trace_ms);
  registry.FindOrCreateHistogram("replay.stale_age_ms")->samples.Merge(
      stale_age_ms);
}

bool SameSimulation(const ReplayMetrics& a, const ReplayMetrics& b) {
  return a.get_requests == b.get_requests &&
         a.ims_requests == b.ims_requests && a.replies_200 == b.replies_200 &&
         a.replies_304 == b.replies_304 &&
         a.invalidations_sent == b.invalidations_sent &&
         a.invsrv_sent == b.invsrv_sent &&
         a.multicast_sends == b.multicast_sends &&
         a.invalidation_frames_sent == b.invalidation_frames_sent &&
         a.invalidations_coalesced == b.invalidations_coalesced &&
         a.inval_sender_busy_max_us == b.inval_sender_busy_max_us &&
         a.inval_sender_busy_total_us == b.inval_sender_busy_total_us &&
         a.batch_flush_ms.SameSamples(b.batch_flush_ms) &&
         a.message_bytes == b.message_bytes && a.local_hits == b.local_hits &&
         a.validated_hits == b.validated_hits &&
         a.latency_ms.SameSamples(b.latency_ms) &&
         a.server_cpu_utilization == b.server_cpu_utilization &&
         a.disk_reads_per_second == b.disk_reads_per_second &&
         a.disk_writes_per_second == b.disk_writes_per_second &&
         a.wall_duration == b.wall_duration &&
         a.stale_serves == b.stale_serves &&
         a.stale_while_invalidation_in_flight ==
             b.stale_while_invalidation_in_flight &&
         a.strong_violations == b.strong_violations &&
         a.sitelist_storage_bytes == b.sitelist_storage_bytes &&
         a.sitelist_entries == b.sitelist_entries &&
         a.sitelist_max_len_end == b.sitelist_max_len_end &&
         a.sitelist_avg_len_at_mod == b.sitelist_avg_len_at_mod &&
         a.sitelist_max_len_at_mod == b.sitelist_max_len_at_mod &&
         a.invalidation_time_ms.SameSamples(b.invalidation_time_ms) &&
         a.parent_hits == b.parent_hits &&
         a.parent_fetches == b.parent_fetches &&
         a.hierarchy_forwards == b.hierarchy_forwards &&
         a.pcv_items_piggybacked == b.pcv_items_piggybacked &&
         a.pcv_invalidated == b.pcv_invalidated &&
         a.psi_notices == b.psi_notices &&
         a.psi_entries_erased == b.psi_entries_erased &&
         a.lease_renewal_ims == b.lease_renewal_ims &&
         a.write_completions == b.write_completions &&
         a.write_lease_expired_completions ==
             b.write_lease_expired_completions &&
         a.recovery_invalidations_sent == b.recovery_invalidations_sent &&
         a.journal_rebuilds == b.journal_rebuilds &&
         a.journal_damaged_recoveries == b.journal_damaged_recoveries &&
         a.write_completion_wall_ms.SameSamples(b.write_completion_wall_ms) &&
         a.write_blocked_trace_ms.SameSamples(b.write_blocked_trace_ms) &&
         a.stale_age_ms.SameSamples(b.stale_age_ms) &&
         a.injected_drops == b.injected_drops &&
         a.injected_dups == b.injected_dups &&
         a.injected_delays == b.injected_delays &&
         a.requests_issued == b.requests_issued &&
         a.requests_skipped == b.requests_skipped &&
         a.request_timeouts == b.request_timeouts &&
         a.modifications_applied == b.modifications_applied &&
         a.invalidations_delivered == b.invalidations_delivered &&
         a.invalidations_refused == b.invalidations_refused &&
         a.proxy_evictions == b.proxy_evictions &&
         a.proxy_expired_evictions == b.proxy_expired_evictions &&
         a.proxy_oversize_rejections == b.proxy_oversize_rejections &&
         a.proxy_tier2_promotions == b.proxy_tier2_promotions &&
         a.proxy_tier2_demotions == b.proxy_tier2_demotions &&
         a.sim_events_executed == b.sim_events_executed &&
         a.sim_peak_queue_depth == b.sim_peak_queue_depth;
}

}  // namespace webcc::replay
