// Busy-time and operation-rate accounting for simulated service stations.
//
// Mirrors what the paper read off `iostat` at the pseudo-server: CPU
// utilization (busy time / elapsed time) and disk reads+writes per second.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace webcc::stats {

class Utilization {
 public:
  // Accumulates `busy` microseconds of service time.
  void AddBusy(Time busy);

  // Counts one operation (e.g. a disk read); `reads`/`writes` are split so
  // the disk station can report the paper's "R;W per second" pair.
  void AddRead() { ++reads_; }
  void AddWrite() { ++writes_; }

  Time busy_time() const { return busy_; }
  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }

  // Fraction of `elapsed` spent busy, in [0, 1]; saturates at 1 (a FIFO
  // station can carry queued work past the nominal end of a run).
  double BusyFraction(Time elapsed) const;

  double ReadsPerSecond(Time elapsed) const;
  double WritesPerSecond(Time elapsed) const;

 private:
  Time busy_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace webcc::stats
