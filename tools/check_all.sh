#!/bin/sh
# The static gate CI runs before anything else: webcc_lint over the tree,
# the clang-format check, and a -Wthread-safety build (the tsa preset).
# Each stage degrades gracefully on toolchains missing its tool, so the
# script is safe to run anywhere; whatever *can* run is enforced.
#
# Usage: tools/check_all.sh   (from anywhere inside the repo)
set -eu

cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

status=0

# 1. webcc_lint v2: build the analyzer (tiny, no project deps) and run the
#    token-stream rules plus the semantic passes (lock discipline,
#    lock-order cycles, determinism taint) over src and ALL of tools — so
#    the analyzer also checks itself. --strict-suppressions makes stale
#    allow() pragmas fatal. The --json findings land in
#    build-checks/webcc_lint.json; CI uploads that file as an artifact even
#    when the gate is red.
echo "== webcc_lint (gcc build) =="
cmake -B build-checks -S . >/dev/null
cmake --build build-checks --target webcc_lint -j >/dev/null
lint_rc=0
./build-checks/tools/lint/webcc_lint --json --strict-suppressions \
  src tools >build-checks/webcc_lint.json || lint_rc=$?
if [ "$lint_rc" -ne 0 ]; then
  # Replay in human form so the log names every witness step.
  ./build-checks/tools/lint/webcc_lint --strict-suppressions src tools || true
  status=1
fi

# 1b. The same analyzer built with Clang, when installed: the tokenizer and
#     the dataflow passes must behave identically across compilers before
#     CI trusts their verdicts.
if command -v clang++ >/dev/null 2>&1; then
  echo "== webcc_lint (clang build) =="
  cmake -B build-checks-clang -S . \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-checks-clang --target webcc_lint -j >/dev/null
  if ! ./build-checks-clang/tools/lint/webcc_lint --strict-suppressions \
    src tools; then
    status=1
  fi
else
  echo "== webcc_lint (clang build) == skipped: clang++ not installed"
fi

# 2. clang-format (skips itself when clang-format is absent).
echo "== check_format =="
if ! tools/check_format.sh; then
  status=1
fi

# 3. Thread-safety analysis: -Wthread-safety -Werror under Clang; on a
#    GCC-only toolchain the preset degrades to a plain build, which still
#    verifies the annotation macros expand cleanly.
echo "== tsa build =="
if command -v clang++ >/dev/null 2>&1; then
  # The analysis only exists in Clang; prefer it when installed.
  export CC=clang CXX=clang++
fi
cmake --preset tsa >/dev/null
if ! cmake --build --preset tsa -j >/dev/null; then
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "check_all: all gates clean"
else
  echo "check_all: FAILED (see above)" >&2
fi
exit "$status"
