#include "cli/commands.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/piggyback.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/farm.h"
#include "stats/table.h"
#include "synth/generate.h"
#include "synth/scenario.h"
#include "trace/clf.h"
#include "trace/filter.h"
#include "trace/presets.h"
#include "trace/summary.h"
#include "trace/workload.h"
#include "util/format.h"

namespace webcc::cli {
namespace {

std::optional<trace::TraceName> ParsePreset(const std::string& name) {
  for (const trace::TraceName preset : trace::AllTraces()) {
    if (name == trace::ToString(preset)) return preset;
  }
  return std::nullopt;
}

// Every input problem — unreadable path, malformed config, invalid scenario
// — funnels through here so all commands fail the same actionable way:
// which input, what went wrong, what to do about it.
void ReportInputError(std::ostream& err, const std::string& input,
                      const std::string& problem, const std::string& hint) {
  err << "error: " << input << ": " << problem << "\n";
  if (!hint.empty()) err << "  hint: " << hint << "\n";
}

// "cannot open (No such file or directory)"-style problem text for a path
// that failed to open; errno is only meaningful right after the failure.
std::string CannotOpenProblem() {
  return std::string("cannot open (") + std::strerror(errno) + ")";
}

bool ReadFileText(const std::string& path, std::string& text,
                  std::string& problem) {
  std::ifstream in(path);
  if (!in) {
    problem = CannotOpenProblem();
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  text = buffer.str();
  return true;
}

// Loads a scenario JSON file (the `webcc synth` / `replay --scenario`
// input); reports its own errors.
bool LoadScenarioFile(const std::string& path, synth::ScenarioFile& out,
                      std::ostream& err) {
  std::string text;
  std::string problem;
  if (!ReadFileText(path, text, problem)) {
    ReportInputError(err, path, problem,
                     "check the path; example scenarios live under "
                     "tests/data/scenarios/");
    return false;
  }
  if (!synth::ParseScenarioFile(text, out, problem)) {
    ReportInputError(err, path, problem,
                     "see DESIGN.md section 14 for the scenario JSON "
                     "dialect and valid ranges");
    return false;
  }
  return true;
}

// Loads the input trace per the --preset/--in flags shared by several
// commands; reports its own errors.
std::optional<trace::Trace> LoadTrace(const Flags& flags, std::ostream& err) {
  const std::string preset_name = flags.GetString("preset", "");
  const std::string in_path = flags.GetString("in", "");
  if (!preset_name.empty() && !in_path.empty()) {
    err << "error: --preset and --in are mutually exclusive\n";
    return std::nullopt;
  }
  if (!preset_name.empty()) {
    const auto preset = ParsePreset(preset_name);
    if (!preset.has_value()) {
      err << "error: unknown preset '" << preset_name
          << "' (try EPA, SDSC, ClarkNet, NASA, SASK)\n";
      return std::nullopt;
    }
    return trace::GenerateTrace(trace::GetPreset(*preset).workload);
  }
  if (!in_path.empty()) {
    std::ifstream in(in_path);
    if (!in) {
      ReportInputError(err, in_path, CannotOpenProblem(),
                       "check the path, or use --preset NAME for a built-in "
                       "workload (EPA, SDSC, ClarkNet, NASA, SASK)");
      return std::nullopt;
    }
    trace::ClfParseStats stats;
    trace::Trace trace = trace::ReadClf(in, in_path, &stats);
    if (trace.records.empty()) {
      err << "error: no usable GET records in " << in_path << " ("
          << stats.malformed << " malformed lines)\n";
      return std::nullopt;
    }
    if (stats.malformed > 0 || stats.skipped > 0) {
      err << "note: " << in_path << ": skipped " << stats.skipped
          << " non-GET and " << stats.malformed << " malformed line(s)\n";
    }
    return trace;
  }
  err << "error: need --preset NAME or --in FILE\n";
  return std::nullopt;
}

// Short metric-key token per protocol (the display names in
// core::ToString carry spaces and parentheses).
const char* ProtocolToken(core::Protocol protocol) {
  switch (protocol) {
    case core::Protocol::kAdaptiveTtl:
      return "ttl";
    case core::Protocol::kPollEveryTime:
      return "poll";
    case core::Protocol::kInvalidation:
      return "invalidation";
    case core::Protocol::kPiggybackValidation:
      return "pcv";
    case core::Protocol::kPiggybackInvalidation:
      return "psi";
  }
  return "unknown";
}

bool RejectUnusedFlags(const Flags& flags, std::ostream& err) {
  const auto unused = flags.UnusedFlags();
  if (unused.empty()) return false;
  err << "error: unknown flag(s):";
  for (const std::string& name : unused) err << " --" << name;
  err << "\n";
  return true;
}

void PrintSummary(const trace::Trace& trace, std::ostream& out) {
  const trace::TraceSummary summary = trace::Summarize(trace);
  stats::Table table({"Statistic", "Value"});
  table.AddRow({"Trace", trace.name});
  table.AddRow({"Duration", util::HumanDuration(trace.duration)});
  table.AddRow({"Total requests",
                util::WithCommas(static_cast<std::int64_t>(
                    summary.total_requests))});
  table.AddRow({"Requested files",
                util::WithCommas(static_cast<std::int64_t>(
                    summary.num_files))});
  table.AddRow({"Avg file size",
                util::HumanBytes(static_cast<std::uint64_t>(
                    summary.avg_file_size_bytes))});
  table.AddRow({"File popularity (max)",
                util::WithCommas(static_cast<std::int64_t>(
                    summary.max_popularity))});
  table.AddRow({"File popularity (avg)",
                util::Fixed(summary.avg_popularity, 1)});
  table.AddRow({"Repeat-request fraction",
                util::Fixed(summary.repeat_request_fraction, 3)});
  out << table.Render();
}

}  // namespace

std::optional<core::Protocol> ParseProtocol(const std::string& name) {
  // Accept the display names from core::ToString too, so that
  // ParseProtocol(ToString(p)) == p round-trips.
  if (name == "ttl" || name == "adaptive-ttl" || name == "Adaptive TTL") {
    return core::Protocol::kAdaptiveTtl;
  }
  if (name == "poll" || name == "polling" || name == "poll-every-time" ||
      name == "Poll-Every-Time") {
    return core::Protocol::kPollEveryTime;
  }
  if (name == "invalidation" || name == "inv" || name == "Invalidation") {
    return core::Protocol::kInvalidation;
  }
  if (name == "pcv" || name == "piggyback-validation" ||
      name == "Piggyback Validation (PCV)") {
    return core::Protocol::kPiggybackValidation;
  }
  if (name == "psi" || name == "piggyback-invalidation" ||
      name == "Piggyback Invalidation (PSI)") {
    return core::Protocol::kPiggybackInvalidation;
  }
  return std::nullopt;
}

std::optional<core::LeaseMode> ParseLeaseMode(const std::string& name) {
  if (name == "none") return core::LeaseMode::kNone;
  if (name == "fixed") return core::LeaseMode::kFixed;
  if (name == "two-tier" || name == "twotier" || name == "two_tier") {
    return core::LeaseMode::kTwoTier;
  }
  return std::nullopt;
}

int RunGenerate(const Flags& flags, std::ostream& out, std::ostream& err) {
  trace::Trace trace;
  const std::string preset_name = flags.GetString("preset", "");
  if (!preset_name.empty()) {
    const auto preset = ParsePreset(preset_name);
    if (!preset.has_value()) {
      err << "error: unknown preset '" << preset_name << "'\n";
      return 2;
    }
    trace = trace::GenerateTrace(trace::GetPreset(*preset).workload);
  } else {
    trace::WorkloadConfig config;
    config.name = "webcc-generated";
    const auto requests = flags.GetInt("requests", 20000);
    const auto documents = flags.GetInt("documents", 1000);
    const auto clients = flags.GetInt("clients", 500);
    const auto hours = flags.GetDouble("duration-hours", 24);
    const auto seed = flags.GetInt("seed", 1);
    const auto zipf = flags.GetDouble("zipf", config.doc_zipf_exponent);
    const auto mean_kb =
        flags.GetDouble("mean-size-kb", config.mean_file_size_bytes / 1024);
    if (!requests || !documents || !clients || !hours || !seed || !zipf ||
        !mean_kb || *requests <= 0 || *documents <= 0 || *clients <= 0 ||
        *hours <= 0) {
      err << "error: invalid generate parameters\n";
      return 2;
    }
    config.total_requests = static_cast<std::uint64_t>(*requests);
    config.num_documents = static_cast<std::uint32_t>(*documents);
    config.num_clients = static_cast<std::uint32_t>(*clients);
    config.duration = FromSeconds(*hours * 3600);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.doc_zipf_exponent = *zipf;
    config.mean_file_size_bytes = *mean_kb * 1024;
    trace = trace::GenerateTrace(config);
  }

  const std::string out_path = flags.GetString("out", "");
  if (RejectUnusedFlags(flags, err)) return 2;
  if (out_path.empty()) {
    trace::WriteClf(trace, out);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      err << "error: cannot write " << out_path << "\n";
      return 1;
    }
    trace::WriteClf(trace, file);
    err << "wrote " << trace.records.size() << " records to " << out_path
        << "\n";
  }
  return 0;
}

int RunSummarize(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto trace = LoadTrace(flags, err);
  if (!trace.has_value()) return 2;
  if (RejectUnusedFlags(flags, err)) return 2;
  PrintSummary(*trace, out);
  return 0;
}

int RunFilter(const Flags& flags, std::ostream& out, std::ostream& err) {
  const auto trace = LoadTrace(flags, err);
  if (!trace.has_value()) return 2;
  const auto ttl_minutes = flags.GetDouble("browser-ttl-minutes", 60);
  const std::string out_path = flags.GetString("out", "");
  if (!ttl_minutes || *ttl_minutes < 0) {
    err << "error: invalid --browser-ttl-minutes\n";
    return 2;
  }
  if (RejectUnusedFlags(flags, err)) return 2;

  trace::BrowserFilterStats stats;
  const trace::Trace filtered = trace::FilterThroughBrowserCaches(
      *trace, FromSeconds(*ttl_minutes * 60), &stats);
  err << "absorbed " << stats.absorbed << " of " << stats.input_requests
      << " requests\n";
  if (out_path.empty()) {
    trace::WriteClf(filtered, out);
  } else {
    std::ofstream file(out_path);
    if (!file) {
      err << "error: cannot write " << out_path << "\n";
      return 1;
    }
    trace::WriteClf(filtered, file);
  }
  return 0;
}

int RunReplayCommand(const Flags& flags, std::ostream& out,
                     std::ostream& err) {
  replay::ReplayConfig config;
  // Input is either a trace (--preset/--in) or a synthetic scenario
  // (--scenario): with a scenario the engine regenerates the workload
  // in-process, so nothing but the JSON needs to exist on disk.
  synth::ScenarioFile scenario_file;
  std::optional<trace::Trace> trace;
  const std::string scenario_path = flags.GetString("scenario", "");
  if (!scenario_path.empty()) {
    if (!flags.GetString("preset", "").empty() ||
        !flags.GetString("in", "").empty()) {
      err << "error: --scenario is mutually exclusive with --preset/--in\n";
      return 2;
    }
    if (!LoadScenarioFile(scenario_path, scenario_file, err)) return 2;
    config.scenario = &scenario_file.config;
  } else {
    trace = LoadTrace(flags, err);
    if (!trace.has_value()) return 2;
    config.trace = &*trace;
  }
  const Time input_duration =
      trace.has_value() ? trace->duration : scenario_file.config.duration;

  const std::string protocol_name = flags.GetString("protocol", "");

  std::vector<core::Protocol> protocols;
  if (protocol_name.empty() || protocol_name == "all") {
    protocols = {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
                 core::Protocol::kInvalidation};
  } else {
    const auto protocol = ParseProtocol(protocol_name);
    if (!protocol.has_value()) {
      err << "error: unknown protocol '" << protocol_name
          << "' (ttl, poll, invalidation, pcv, psi, all)\n";
      return 2;
    }
    protocols = {*protocol};
  }

  const auto lifetime_days = flags.GetDouble("lifetime-days", 14);
  const auto lease_days = flags.GetDouble("lease-days", 0);
  const auto cache_mb = flags.GetInt("cache-mb", 128);
  if (!lifetime_days || *lifetime_days <= 0 || !lease_days ||
      *lease_days < 0 || !cache_mb || *cache_mb <= 0) {
    err << "error: invalid replay parameters\n";
    return 2;
  }
  config.mean_lifetime = FromSeconds(*lifetime_days * 86400);
  config.proxy_cache_bytes = static_cast<std::uint64_t>(*cache_mb) << 20;
  // --cache-bytes overrides --cache-mb with an exact budget (the pressure
  // ablation sweeps capacities far below 1 MB granularity).
  const auto cache_bytes = flags.GetInt("cache-bytes", 0);
  if (!cache_bytes || *cache_bytes < 0) {
    err << "error: invalid --cache-bytes (must be >= 0)\n";
    return 2;
  }
  if (*cache_bytes > 0) {
    config.proxy_cache_bytes = static_cast<std::uint64_t>(*cache_bytes);
  }
  const std::string policy_name = flags.GetString("cache-policy", "");
  if (!policy_name.empty() &&
      !http::eviction::ParseEvictionPolicyKind(policy_name,
                                               config.eviction_policy)) {
    err << "error: unknown cache policy '" << policy_name << "' (valid: "
        << http::eviction::ValidEvictionPolicyNames() << ")\n";
    return 2;
  }
  const auto tier2_bytes = flags.GetInt("cache-tier2-bytes", 0);
  if (!tier2_bytes || *tier2_bytes < 0) {
    err << "error: invalid --cache-tier2-bytes (must be >= 0)\n";
    return 2;
  }
  config.proxy_tier.tier2_capacity_bytes =
      static_cast<std::uint64_t>(*tier2_bytes);
  const std::string lease_name = flags.GetString("lease", "");
  const bool two_tier_switch = flags.GetBool("two-tier");
  if (!lease_name.empty()) {
    // Explicit lease mode; --lease-days still sets the duration.
    const auto lease_mode = ParseLeaseMode(lease_name);
    if (!lease_mode.has_value()) {
      err << "error: unknown lease mode '" << lease_name
          << "' (valid: none, fixed, two-tier)\n";
      return 2;
    }
    if (two_tier_switch) {
      err << "error: --lease and --two-tier are mutually exclusive\n";
      return 2;
    }
    config.lease.mode = *lease_mode;
    if (*lease_mode != core::LeaseMode::kNone) {
      config.lease.duration =
          *lease_days > 0 ? FromSeconds(*lease_days * 86400) : input_duration;
    }
  } else if (two_tier_switch) {
    config.lease.mode = core::LeaseMode::kTwoTier;
    config.lease.duration =
        *lease_days > 0 ? FromSeconds(*lease_days * 86400) : input_duration;
  } else if (*lease_days > 0) {
    config.lease.mode = core::LeaseMode::kFixed;
    config.lease.duration = FromSeconds(*lease_days * 86400);
  }
  config.multicast_invalidation = flags.GetBool("multicast");
  config.serialized_invalidation = !flags.GetBool("decoupled");
  config.journaled_recovery = !flags.GetBool("no-journal");
  const auto shards = flags.GetInt("shards", 1);
  if (!shards || *shards < 1) {
    err << "error: invalid --shards (must be >= 1)\n";
    return 2;
  }
  config.accelerator_shards = static_cast<std::uint32_t>(*shards);
  const auto batch_window_ms = flags.GetDouble("batch-window", 0);
  if (!batch_window_ms || *batch_window_ms < 0) {
    err << "error: invalid --batch-window (milliseconds, >= 0)\n";
    return 2;
  }
  if (*batch_window_ms > 0 && config.serialized_invalidation) {
    err << "error: --batch-window requires --decoupled (a serialized server "
           "blocks the write until every invalidation is out, so there is "
           "no outbox to batch)\n";
    return 2;
  }
  config.invalidation_batch_window =
      FromSeconds(*batch_window_ms / 1000.0);

  // Deterministic fault injection: --fault-plan loads a JSON scenario;
  // --fault-seed alone generates a random plan (the same plan every run for
  // a given seed and trace). The plan object must outlive the farm run.
  fault::FaultPlanFile plan_file;
  const std::string fault_plan_path = flags.GetString("fault-plan", "");
  const auto fault_seed = flags.GetInt("fault-seed", 0);
  if (!fault_seed || *fault_seed < 0) {
    err << "error: invalid --fault-seed\n";
    return 2;
  }
  config.fault_seed = static_cast<std::uint64_t>(*fault_seed);
  if (!fault_plan_path.empty()) {
    std::string plan_text;
    std::string problem;
    if (!ReadFileText(fault_plan_path, plan_text, problem)) {
      ReportInputError(err, fault_plan_path, problem,
                       "check the path; example plans live under "
                       "tests/data/fault_plans/");
      return 2;
    }
    if (!fault::ParseFaultPlanFile(plan_text, plan_file, problem)) {
      ReportInputError(err, fault_plan_path, problem,
                       "fault plans use the JSON dialect `webcc` writes; "
                       "see DESIGN.md section 9");
      return 2;
    }
    config.fault_plan = &plan_file.plan;
  } else if (*fault_seed > 0) {
    fault::RandomPlanConfig random_config;
    random_config.horizon = input_duration;
    random_config.clients = config.num_pseudo_clients;
    plan_file.plan =
        fault::Random(random_config, static_cast<std::uint64_t>(*fault_seed));
    config.fault_plan = &plan_file.plan;
    err << "generated fault plan '" << plan_file.plan.name << "' ("
        << plan_file.plan.events.size() << " events)\n";
  }

  const auto workers = flags.GetInt("workers", 0);
  if (!workers || *workers < 0) {
    err << "error: invalid --workers\n";
    return 2;
  }
  const std::string trace_out = flags.GetString("trace-out", "");
  const std::string metrics_out = flags.GetString("metrics-out", "");
  if (RejectUnusedFlags(flags, err)) return 2;

  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_file.open(trace_out);
    if (!trace_file) {
      err << "error: cannot write " << trace_out << "\n";
      return 1;
    }
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
  }

  // A multi-protocol sweep is a set of independent deterministic replays
  // over one shared trace: farm them across cores, then print in protocol
  // order (results arrive in submission order). Per-run metric registries
  // keep the farm race-free; they merge under protocol prefixes below.
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries;
  std::vector<replay::ReplayConfig> configs;
  configs.reserve(protocols.size());
  for (const core::Protocol protocol : protocols) {
    config.protocol = protocol;
    if (!metrics_out.empty()) {
      registries.push_back(std::make_unique<obs::MetricsRegistry>());
      config.metrics = registries.back().get();
    }
    configs.push_back(config);
  }
  replay::Farm farm(static_cast<unsigned>(*workers));
  // The farm's per-job buffers merge in submission order, so --trace-out is
  // byte-identical for any --workers value.
  if (trace_sink != nullptr) farm.set_merged_trace_sink(trace_sink.get());
  for (const replay::ReplayConfig& c : configs) farm.Submit(c);
  const std::vector<replay::ReplayMetrics> results = farm.Collect();

  if (!metrics_out.empty()) {
    std::ofstream metrics_file(metrics_out);
    if (!metrics_file) {
      err << "error: cannot write " << metrics_out << "\n";
      return 1;
    }
    if (registries.size() == 1) {
      registries.front()->WriteJson(metrics_file);
    } else {
      obs::MetricsRegistry merged;
      for (std::size_t i = 0; i < registries.size(); ++i) {
        merged.MergeFrom(*registries[i],
                         std::string(ProtocolToken(protocols[i])) + ".");
      }
      merged.WriteJson(metrics_file);
    }
    err << "wrote metrics to " << metrics_out << "\n";
  }
  if (trace_sink != nullptr) {
    err << "wrote trace events to " << trace_out << "\n";
  }

  for (std::size_t i = 0; i < protocols.size(); ++i) {
    const core::Protocol protocol = protocols[i];
    const replay::ReplayMetrics& metrics = results[i];
    out << core::ToString(protocol) << "\n  " << metrics.Summary() << "\n";
    if (protocol == core::Protocol::kInvalidation) {
      out << "  site lists: "
          << util::WithCommas(
                 static_cast<std::int64_t>(metrics.sitelist_entries))
          << " entries, "
          << util::HumanBytes(metrics.sitelist_storage_bytes)
          << "; worst fan-out "
          << util::Fixed(metrics.invalidation_time_ms.max() / 1000.0, 2)
          << "s\n";
    }
  }
  return 0;
}

int RunSynth(const Flags& flags, std::ostream& out, std::ostream& err) {
  // The scenario comes either from a JSON file (--scenario) or from flags;
  // both funnel into the same validated ScenarioConfig.
  synth::ScenarioConfig config;
  const std::string scenario_path = flags.GetString("scenario", "");
  if (!scenario_path.empty()) {
    synth::ScenarioFile scenario_file;
    if (!LoadScenarioFile(scenario_path, scenario_file, err)) return 2;
    config = scenario_file.config;
  } else {
    config.name = flags.GetString("name", "synth");
    const auto requests = flags.GetInt("requests", 10000);
    const auto sites = flags.GetInt("sites", 1000);
    const auto documents = flags.GetInt("documents", 1000);
    const auto origins = flags.GetInt("origins", 1);
    const auto hours = flags.GetDouble("duration-hours", 1.0);
    const auto seed = flags.GetInt("seed", 1);
    const auto doc_zipf = flags.GetDouble("zipf", config.doc_zipf);
    const auto site_zipf = flags.GetDouble("site-zipf", config.site_zipf);
    const auto write_fraction =
        flags.GetDouble("write-fraction", config.write_fraction);
    const auto write_zipf = flags.GetDouble("write-zipf", config.write_zipf);
    const auto locality = flags.GetDouble("locality", config.locality);
    const auto churn = flags.GetDouble("churn-fraction", config.churn_fraction);
    if (!requests || !sites || !documents || !origins || !hours || !seed ||
        !doc_zipf || !site_zipf || !write_fraction || !write_zipf ||
        !locality || !churn) {
      err << "error: synth flags must be numeric\n";
      return 2;
    }
    // Negative counts would wrap the unsigned casts below; everything else
    // (zero counts, out-of-range fractions) flows into Validate so the
    // error names the offending field.
    if (*requests < 0 || *sites < 0 || *documents < 0 || *origins < 0 ||
        *hours <= 0 || *seed < 0) {
      err << "error: synth counts must be non-negative and duration "
             "positive\n";
      return 2;
    }
    config.requests = static_cast<std::uint64_t>(*requests);
    config.sites = static_cast<std::uint32_t>(*sites);
    config.documents = static_cast<std::uint32_t>(*documents);
    config.origins = static_cast<std::uint32_t>(*origins);
    config.duration = FromSeconds(*hours * 3600);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.doc_zipf = *doc_zipf;
    config.site_zipf = *site_zipf;
    config.write_fraction = *write_fraction;
    config.write_zipf = *write_zipf;
    config.locality = *locality;
    config.churn_fraction = *churn;
    const std::string problem = synth::Validate(config);
    if (!problem.empty()) {
      ReportInputError(err, "synth flags", problem,
                       "see DESIGN.md section 14 for valid ranges");
      return 2;
    }
  }

  const bool print_config = flags.GetBool("print-config");
  const bool print_digest = flags.GetBool("digest");
  const bool do_replay = flags.GetBool("replay");
  const std::string out_path = flags.GetString("out", "");
  const std::string protocol_name = flags.GetString("protocol", "");
  const auto workers = flags.GetInt("workers", 0);
  if (!workers || *workers < 0) {
    err << "error: invalid --workers\n";
    return 2;
  }
  if (RejectUnusedFlags(flags, err)) return 2;

  if (print_config) {
    out << synth::ToJson(config);
    return 0;
  }

  const synth::SynthWorkload workload = synth::Generate(config);
  if (print_digest) {
    // The determinism gate: equal configs must print equal digests on any
    // machine (CI runs this twice per seed and diffs).
    out << "workload_digest " << synth::WorkloadDigest(workload) << "\n";
  }
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) {
      err << "error: cannot write " << out_path << "\n";
      return 1;
    }
    trace::WriteClf(workload.trace, file);
    err << "wrote " << workload.trace.records.size() << " records to "
        << out_path << "\n";
  }

  if (do_replay) {
    std::vector<core::Protocol> protocols;
    if (protocol_name.empty() || protocol_name == "invalidation") {
      protocols = {core::Protocol::kInvalidation};
    } else if (protocol_name == "all") {
      protocols = {core::Protocol::kAdaptiveTtl,
                   core::Protocol::kPollEveryTime,
                   core::Protocol::kInvalidation,
                   core::Protocol::kPiggybackValidation,
                   core::Protocol::kPiggybackInvalidation};
    } else {
      const auto protocol = ParseProtocol(protocol_name);
      if (!protocol.has_value()) {
        err << "error: unknown protocol '" << protocol_name
            << "' (ttl, poll, invalidation, pcv, psi, all)\n";
        return 2;
      }
      protocols = {*protocol};
    }
    // Workers regenerate the workload from the scenario independently, so
    // the merged trace digest below is invariant in --workers.
    replay::ReplayConfig replay_config;
    replay_config.scenario = &config;
    obs::BufferTraceSink merged;
    replay::Farm farm(static_cast<unsigned>(*workers));
    farm.set_merged_trace_sink(&merged);
    for (const core::Protocol protocol : protocols) {
      replay_config.protocol = protocol;
      farm.Submit(replay_config);
    }
    const std::vector<replay::ReplayMetrics> results = farm.Collect();
    for (std::size_t i = 0; i < protocols.size(); ++i) {
      out << core::ToString(protocols[i]) << "\n  " << results[i].Summary()
          << "\n";
    }
    out << "trace_digest " << obs::DigestJsonl(merged.Text()) << "\n";
  } else if (!print_digest && out_path.empty()) {
    PrintSummary(workload.trace, out);
    out << "write events: " << workload.writes.size() << "\n";
  }
  return 0;
}

int RunTraceCommand(const Flags& flags, std::ostream& out,
                    std::ostream& err) {
  if (flags.positional().size() < 2 || flags.positional()[1] != "summarize") {
    err << "usage: webcc trace summarize --in FILE\n";
    return 2;
  }
  const std::string in_path = flags.GetString("in", "");
  if (RejectUnusedFlags(flags, err)) return 2;
  if (in_path.empty()) {
    err << "error: need --in FILE (a --trace-out JSONL stream)\n";
    return 2;
  }
  std::ifstream in(in_path);
  if (!in) {
    ReportInputError(err, in_path, CannotOpenProblem(),
                     "pass a JSONL stream written by replay --trace-out");
    return 1;
  }
  const obs::TraceSummary summary = obs::SummarizeTrace(in);
  obs::WriteTraceSummary(out, summary);
  // Malformed or structurally inconsistent streams exit nonzero so scripts
  // can assert trace health.
  return summary.malformed_lines == 0 && summary.undefined_ids == 0 ? 0 : 1;
}

int RunProtocols(std::ostream& out) {
  out << "ttl           " << core::ToString(core::Protocol::kAdaptiveTtl)
      << "\n"
      << "poll          " << core::ToString(core::Protocol::kPollEveryTime)
      << "\n"
      << "invalidation  " << core::ToString(core::Protocol::kInvalidation)
      << "\n"
      << "pcv           "
      << core::ToString(core::Protocol::kPiggybackValidation) << "\n"
      << "psi           "
      << core::ToString(core::Protocol::kPiggybackInvalidation) << "\n";
  return 0;
}

void PrintUsage(std::ostream& out) {
  out << "usage: webcc <command> [flags]\n"
         "commands:\n"
         "  generate   synthesize a workload, write it as CLF\n"
         "             --preset EPA|SDSC|ClarkNet|NASA|SASK, or\n"
         "             --requests N --documents N --clients N\n"
         "             --duration-hours H [--seed S] [--zipf Z]\n"
         "             [--mean-size-kb K]   [--out FILE]\n"
         "  summarize  Table-2 style statistics of a trace\n"
         "             --in FILE | --preset NAME\n"
         "  filter     drop requests a browser cache would absorb\n"
         "             --in FILE [--browser-ttl-minutes M] [--out FILE]\n"
         "  synth      deterministic scenario synthesizer (seeded; same\n"
         "             config => bit-identical workload on any machine)\n"
         "             --scenario FILE (JSON), or flags:\n"
         "             [--sites N] [--documents N] [--requests N]\n"
         "             [--origins N] [--duration-hours H] [--seed S]\n"
         "             [--zipf Z] [--site-zipf Z] [--write-fraction F]\n"
         "             [--write-zipf Z] [--locality L] [--churn-fraction F]\n"
         "             actions: [--print-config]  canonical scenario JSON\n"
         "             [--digest]  workload digest (determinism gate)\n"
         "             [--out FILE]  write the trace as CLF\n"
         "             [--replay [--protocol P|all] [--workers N]]  replay\n"
         "             in-process and print metrics + merged trace digest\n"
         "  replay     run the consistency experiment on a trace\n"
         "             --in FILE | --preset NAME | --scenario FILE\n"
         "             [--protocol ttl|poll|invalidation|pcv|psi|all]\n"
         "             [--lifetime-days D] [--lease-days L]\n"
         "             [--lease none|fixed|two-tier] [--two-tier]\n"
         "             [--multicast] [--decoupled] [--cache-mb N]\n"
         "             [--cache-bytes N]  exact proxy-cache budget, overrides\n"
         "             --cache-mb (the pressure ablation needs sub-MB steps)\n"
         "             [--cache-policy lru|expired-first|gds]  eviction\n"
         "             policy (default expired-first, Harvest's rule)\n"
         "             [--cache-tier2-bytes N]  enable a large/cold second\n"
         "             cache tier with its own byte budget (0 = off)\n"
         "             [--shards N]  consistent-hash the invalidation table\n"
         "             across N accelerator shards (default 1)\n"
         "             [--batch-window MS]  with --decoupled, hold each\n"
         "             shard's outbox MS milliseconds and coalesce same-site\n"
         "             invalidations into one INVB frame (0 = unbatched)\n"
         "             [--fault-plan FILE]  JSON crash/partition/link-fault\n"
         "             scenario; [--fault-seed S] replays it (or, without\n"
         "             a file, generates a random plan) deterministically\n"
         "             [--no-journal]  blanket INVSRV recovery broadcast\n"
         "             instead of the write-ahead journal rebuild\n"
         "             [--workers N]  (0 = one per core; protocols of a\n"
         "             sweep run concurrently, output order is unchanged)\n"
         "             [--trace-out FILE]    structured JSONL event trace\n"
         "             [--metrics-out FILE]  full metric registry as JSON\n"
         "  trace      inspect a --trace-out stream\n"
         "             summarize --in FILE\n"
         "  protocols  list protocol names\n";
}

int RunCli(const Flags& flags, std::ostream& out, std::ostream& err) {
  if (flags.positional().empty()) {
    PrintUsage(err);
    return 2;
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return RunGenerate(flags, out, err);
  if (command == "summarize") return RunSummarize(flags, out, err);
  if (command == "filter") return RunFilter(flags, out, err);
  if (command == "synth") return RunSynth(flags, out, err);
  if (command == "replay") return RunReplayCommand(flags, out, err);
  if (command == "trace") return RunTraceCommand(flags, out, err);
  if (command == "protocols") return RunProtocols(out);
  if (command == "help") {
    PrintUsage(out);
    return 0;
  }
  err << "error: unknown command '" << command << "'\n";
  PrintUsage(err);
  return 2;
}

}  // namespace webcc::cli
