// Consistent-hash ring mapping URLs onto accelerator shards.
//
// Each shard contributes a fixed number of virtual points (FNV-1a of
// "shard-<index>#<replica>") to a 64-bit ring; a URL lands on the first
// point at or after its own hash. Properties the sharded accelerator
// relies on:
//
//  * deterministic — the mapping is a pure function of (num_shards,
//    replicas, url), identical across runs, platforms and processes, so
//    replay digests stay reproducible;
//  * stable — growing from N to N+1 shards moves only the URLs whose ring
//    arc the new shard's points capture (~1/(N+1) of keys), the classic
//    consistent-hashing bound;
//  * balanced — 64 virtual points per shard keep the per-shard key share
//    within a few percent of uniform for realistic URL populations.
//
// Header-only: the ring sits on the accelerator's per-request hot path and
// ShardOf must inline to a hash plus one binary search.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace webcc::core {

inline std::uint64_t HashRingFnv1a64(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

class HashRing {
 public:
  static constexpr std::uint32_t kDefaultReplicas = 64;

  explicit HashRing(std::uint32_t num_shards,
                    std::uint32_t replicas = kDefaultReplicas)
      : num_shards_(num_shards) {
    WEBCC_CHECK_MSG(num_shards > 0, "hash ring needs at least one shard");
    WEBCC_CHECK_MSG(replicas > 0, "hash ring needs at least one replica");
    points_.reserve(static_cast<std::size_t>(num_shards) * replicas);
    for (std::uint32_t shard = 0; shard < num_shards; ++shard) {
      for (std::uint32_t replica = 0; replica < replicas; ++replica) {
        std::string label = "shard-";
        label += std::to_string(shard);
        label += '#';
        label += std::to_string(replica);
        points_.push_back({HashRingFnv1a64(label), shard});
      }
    }
    // Sort by (hash, shard) so a hash collision between two shards' points
    // still resolves identically everywhere.
    std::sort(points_.begin(), points_.end());
  }

  std::uint32_t num_shards() const { return num_shards_; }

  std::uint32_t ShardOf(std::string_view url) const {
    if (num_shards_ == 1) return 0;
    const std::uint64_t hash = HashRingFnv1a64(url);
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), Point{hash, 0});
    return it == points_.end() ? points_.front().shard : it->shard;
  }

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t shard = 0;
    bool operator<(const Point& other) const {
      return hash != other.hash ? hash < other.hash : shard < other.shard;
    }
  };

  std::uint32_t num_shards_;
  std::vector<Point> points_;
};

}  // namespace webcc::core
