// Extension benchmark: flat vs hierarchical invalidation (the Worrell [14]
// configuration).
//
// The paper credits Worrell's thesis with showing invalidation works well
// in hierarchical caches — where the hierarchy "significantly reduces the
// overhead for invalidation" — but studies the flat case because
// hierarchies were not yet deployed. This bench builds the hierarchy: a
// parent proxy between the leaf proxies and the server, with the server
// invalidating only the parent and the parent forwarding to interested
// leaves.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

int main() {
  std::printf("=== Extension: flat vs hierarchical invalidation ===\n\n");

  stats::Table table({"Trace", "server invals flat", "server invals hier",
                      "forwards", "server 200s flat", "server 200s hier",
                      "parent hits", "CPU flat", "CPU hier", "violations"});
  for (const replay::ExperimentSpec& spec : replay::AllTableExperiments()) {
    const trace::Trace& trace = bench::TraceFor(spec.trace);
    replay::ReplayConfig flat =
        replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
    replay::ReplayConfig hier = flat;
    hier.hierarchical = true;

    const replay::ReplayMetrics flat_run = replay::RunReplay(flat);
    const replay::ReplayMetrics hier_run = replay::RunReplay(hier);

    table.AddRow(
        {spec.id,
         util::WithCommas(
             static_cast<std::int64_t>(flat_run.invalidations_sent)),
         util::WithCommas(
             static_cast<std::int64_t>(hier_run.invalidations_sent)),
         util::WithCommas(
             static_cast<std::int64_t>(hier_run.hierarchy_forwards)),
         util::WithCommas(static_cast<std::int64_t>(flat_run.replies_200)),
         util::WithCommas(
             static_cast<std::int64_t>(hier_run.parent_fetches)),
         util::WithCommas(static_cast<std::int64_t>(hier_run.parent_hits)),
         util::Fixed(flat_run.server_cpu_utilization * 100, 1) + "%",
         util::Fixed(hier_run.server_cpu_utilization * 100, 1) + "%",
         util::WithCommas(static_cast<std::int64_t>(
             flat_run.strong_violations + hier_run.strong_violations))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "With a hierarchy the server sends one invalidation per modification\n"
      "(the parent fans out to interested leaves), its transfer load drops\n"
      "to the parent's misses, and its CPU falls accordingly — exactly the\n"
      "\"significantly reduces the overhead for invalidation\" effect the\n"
      "paper attributes to Worrell's hierarchical setting.\n");
  return 0;
}
