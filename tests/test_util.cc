// Unit tests for util/: RNG, distributions, formatting, time helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/distributions.h"
#include "util/format.h"
#include "util/rng.h"
#include "util/time.h"

namespace webcc::util {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t value = rng.NextInRange(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    saw_lo |= value == -2;
    saw_hi |= value == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, NextBoolRespectsProbability) {
  Rng rng(13);
  int trues = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) trues += rng.NextBool(0.25);
  EXPECT_NEAR(static_cast<double>(trues) / kDraws, 0.25, 0.01);
}

TEST(Rng, ForkGivesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not simply mirror the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.NextU64() == child.NextU64();
  EXPECT_LT(equal, 4);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(21);
  Rng b(21);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.NextU64(), fb.NextU64());
}

// --- ZipfDistribution ----------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 0.9);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfDecreasesWithRank) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-9);
  }
}

TEST(Zipf, SamplesStayInRange) {
  ZipfDistribution zipf(23, 0.8);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 23u);
}

TEST(Zipf, HeadRankSampledAtExpectedFrequency) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(2);
  constexpr int kDraws = 200000;
  int head = 0;
  for (int i = 0; i < kDraws; ++i) head += zipf.Sample(rng) == 0;
  EXPECT_NEAR(static_cast<double>(head) / kDraws, zipf.Pmf(0), 0.005);
}

TEST(Zipf, HigherExponentConcentratesHead) {
  Rng rng1(3);
  Rng rng2(3);
  ZipfDistribution flat(1000, 0.5);
  ZipfDistribution steep(1000, 1.2);
  int flat_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 20000; ++i) {
    flat_head += flat.Sample(rng1) < 10;
    steep_head += steep.Sample(rng2) < 10;
  }
  EXPECT_GT(steep_head, flat_head * 2);
}

TEST(Zipf, SingleRankAlwaysZero) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

// --- scalar distributions -------------------------------------------------------

TEST(Exponential, MeanMatches) {
  Rng rng(6);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += SampleExponential(rng, 7.0);
  EXPECT_NEAR(sum / kDraws, 7.0, 0.1);
}

TEST(Exponential, AlwaysNonNegative) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleExponential(rng, 2.0), 0.0);
  }
}

TEST(Lognormal, MeanMatches) {
  Rng rng(10);
  double sum = 0.0;
  constexpr int kDraws = 400000;
  for (int i = 0; i < kDraws; ++i) sum += SampleLognormal(rng, 100.0, 1.0);
  EXPECT_NEAR(sum / kDraws, 100.0, 3.0);
}

TEST(Lognormal, AlwaysPositive) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(SampleLognormal(rng, 5.0, 2.0), 0.0);
  }
}

TEST(StandardNormal, MeanAndVariance) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = SampleStandardNormal(rng);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.02);
}

TEST(Discrete, RespectsWeights) {
  DiscreteDistribution dist({1.0, 3.0, 0.0, 6.0});
  Rng rng(16);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[dist.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(Discrete, SingleBucket) {
  DiscreteDistribution dist({5.0});
  Rng rng(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.Sample(rng), 0u);
}

// --- formatting ------------------------------------------------------------------

TEST(Format, HumanBytesUnits) {
  EXPECT_EQ(HumanBytes(0), "0B");
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(1024), "1KB");
  EXPECT_EQ(HumanBytes(1536), "1.5KB");
  EXPECT_EQ(HumanBytes(1048576), "1MB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024 * 1024), "5GB");
}

TEST(Format, HumanDuration) {
  EXPECT_EQ(HumanDuration(0), "0ms");
  EXPECT_EQ(HumanDuration(kSecond), "1s");
  EXPECT_EQ(HumanDuration(90 * kSecond), "1m30s");
  EXPECT_EQ(HumanDuration(kDay + kHour + kMinute + kSecond), "1d1h1m1s");
  EXPECT_EQ(HumanDuration(500 * kMillisecond), "500ms");
}

TEST(Format, HumanDurationNegative) {
  EXPECT_EQ(HumanDuration(-kSecond), "-1s");
}

TEST(Format, Fixed) {
  EXPECT_EQ(Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Fixed(2.0, 0), "2");
  EXPECT_EQ(Fixed(-1.5, 1), "-1.5");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1000), "1,000");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
}

// --- time helpers ------------------------------------------------------------------

TEST(Time, UnitRelations) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
  EXPECT_EQ(FromSeconds(2.5), 2 * kSecond + 500 * kMillisecond);
}

}  // namespace
}  // namespace webcc::util
