// Reader side of the JSONL trace format (see trace_sink.h for the writer).
//
// Backs `webcc trace summarize`: streams a trace file once, tallies events
// by type, tracks the clock span and the intern table size, and verifies
// structural invariants (every id referenced was interned first within the
// current run scope). The parser accepts exactly what JsonlTraceSink writes;
// it is not a general JSON parser.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/event.h"

namespace webcc::obs {

// Aggregate view of one JSONL trace stream (possibly many concatenated runs).
struct TraceSummary {
  std::uint64_t total_events = 0;    // event lines (interns excluded)
  std::uint64_t intern_lines = 0;    // {"e":"intern",...} lines
  std::uint64_t runs = 0;            // run_begin count
  std::uint64_t malformed_lines = 0; // lines the parser could not read
  std::uint64_t unknown_events = 0;  // well-formed lines with unknown "e"
  std::uint64_t undefined_ids = 0;   // u/s referencing an id never interned
  Time first_at = -1;                // smallest "t" seen; -1 when no events
  Time last_at = -1;                 // largest "t" seen; -1 when no events
  // Per-type tally, indexed by EventType.
  std::array<std::uint64_t, 32> by_type{};

  std::uint64_t CountOf(EventType type) const {
    return by_type[static_cast<std::size_t>(type)];
  }
};

// Streams `in` line by line and accumulates into a summary.
TraceSummary SummarizeTrace(std::istream& in);

// Renders a human-readable report: totals, clock span, and a per-type table
// sorted by count (descending, name ascending on ties).
void WriteTraceSummary(std::ostream& out, const TraceSummary& summary);

// FNV-1a 64-bit over the exact bytes of a JSONL trace. Two runs that produce
// byte-identical traces produce equal digests; this is what the fault golden
// corpus locks (`webcc replay --trace-out` + tests/data/fault_plans).
std::uint64_t DigestJsonl(std::string_view text);

}  // namespace webcc::obs
