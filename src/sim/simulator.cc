#include "sim/simulator.h"

#include <utility>

#include "util/check.h"

namespace webcc::sim {

void Simulator::At(Time t, Action action) {
  WEBCC_CHECK_MSG(t >= now_, "cannot schedule into the past");
  WEBCC_CHECK_MSG(static_cast<bool>(action), "null action");
  queue_.push(Event{t, next_seq_++, std::move(action)});
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
}

void Simulator::After(Time delay, Action action) {
  WEBCC_CHECK_MSG(delay >= 0, "negative delay");
  At(now_ + delay, std::move(action));
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // Move the action out before popping: the action may schedule new events.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  ++executed_;
  event.action();
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time t) {
  WEBCC_CHECK_MSG(t >= now_, "cannot run backwards");
  while (!queue_.empty() && queue_.top().at <= t) Step();
  now_ = t;
}

}  // namespace webcc::sim
