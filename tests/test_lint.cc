// webcc_lint's contract: every fixture under tests/data/lint trips exactly
// the rule it is named for, clean code passes, and pragmas suppress. The
// fixtures are the executable specification of the rules — a rule change
// that silently stops flagging its fixture fails here, not in review.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace webcc::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(WEBCC_TEST_DATA_DIR) + "/lint/" + name;
}

struct RunResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

RunResult RunCli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunLintMain(args, out, err);
  return {code, out.str(), err.str()};
}

bool HasRule(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [rule](const Finding& f) { return f.rule == rule; });
}

TEST(LintRules, RuleIdsAreStable) {
  const std::vector<std::string_view> expected = {
      "determinism-clock", "unordered-iter-in-dump", "raw-mutex",
      "enum-switch-default", "naked-send", "scan-prune", "naked-evict"};
  EXPECT_EQ(RuleIds(), expected);
}

// --- one fixture per rule, asserting exit code and rule id -----------------

struct FixtureCase {
  const char* file;
  const char* rule;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, FlagsItsRule) {
  const FixtureCase& c = GetParam();
  const RunResult result = RunCli({FixturePath(c.file)});
  EXPECT_EQ(result.exit_code, 1) << result.out << result.err;
  EXPECT_NE(result.out.find(std::string("[") + c.rule + "]"),
            std::string::npos)
      << result.out;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"clock_violation.cc", "determinism-clock"},
        FixtureCase{"unordered_dump_violation.cc", "unordered-iter-in-dump"},
        FixtureCase{"raw_mutex_violation.cc", "raw-mutex"},
        FixtureCase{"enum_switch_violation.cc", "enum-switch-default"},
        FixtureCase{"live_naked_send_violation.cc", "naked-send"},
        FixtureCase{"live_unclassified_send_violation.cc", "naked-send"},
        FixtureCase{"scan_prune_violation.cc", "scan-prune"},
        FixtureCase{"naked_evict_violation.cc", "naked-evict"}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      // Fixture file stem: unique even when two fixtures share a rule.
      std::string name = info.param.file;
      name.resize(name.size() - 3);  // strip ".cc"
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(LintCli, ClassifiedSendCounterpartIsClean) {
  // The pair fixture of live_unclassified_send_violation.cc: the same drain
  // through SendOneWayClassified must produce no naked-send finding.
  const RunResult result = RunCli({FixturePath("live_classified_send_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintRules, UnclassifiedSendFlaggedOnlyOutsideSocketCc) {
  const std::string text =
      "bool Push(unsigned short p, const char* l) { return SendOneWay(p, l); }\n";
  EXPECT_TRUE(HasRule(LintFile("src/live/live_server.cc", text), "naked-send"));
  EXPECT_FALSE(HasRule(LintFile("src/live/socket.cc", text), "naked-send"));
  const std::string classified =
      "int Push(unsigned short p, const char* l) {\n"
      "  return SendOneWayClassified(p, l, 1000) == 0 ? 0 : 1;\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/live/live_server.cc", classified), "naked-send"));
}

TEST(LintCli, WheelPruneCounterpartIsClean) {
  // The pair fixture of scan_prune_violation.cc: the same expiry work
  // through the wheel's authority callback produces no scan-prune finding.
  const RunResult result = RunCli({FixturePath("scan_prune_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, KernelBackedEvictCounterpartIsClean) {
  // The pair fixture of naked_evict_violation.cc: the same pressure routed
  // through the proxy cache's eviction kernel produces no naked-evict
  // finding.
  const RunResult result = RunCli({FixturePath("naked_evict_clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, CleanFileExitsZero) {
  const RunResult result = RunCli({FixturePath("clean.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
  EXPECT_TRUE(result.out.empty()) << result.out;
}

TEST(LintCli, PragmasSuppressEveryFinding) {
  const RunResult result = RunCli({FixturePath("suppressed.cc")});
  EXPECT_EQ(result.exit_code, 0) << result.out << result.err;
}

TEST(LintCli, DirectoryScanFindsAllFixtures) {
  const RunResult result = RunCli({FixturePath("")});
  EXPECT_EQ(result.exit_code, 1);
  for (const std::string_view rule : RuleIds()) {
    EXPECT_NE(result.out.find(std::string("[") + std::string(rule) + "]"),
              std::string::npos)
        << "directory scan missed " << rule << "\n"
        << result.out;
  }
}

TEST(LintCli, JsonOutputIsMachineReadable) {
  const RunResult result = RunCli({"--json", FixturePath("clock_violation.cc")});
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.out.find("\"rule\":\"determinism-clock\""),
            std::string::npos)
      << result.out;
  EXPECT_NE(result.out.find("\"line\":"), std::string::npos);
}

TEST(LintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCli({}).exit_code, 2);
  EXPECT_EQ(RunCli({"--bogus-flag"}).exit_code, 2);
  EXPECT_EQ(RunCli({FixturePath("no_such_file.cc")}).exit_code, 2);
}

// --- rule semantics on inline snippets -------------------------------------

TEST(LintRules, CommentsAndStringsDoNotTrip) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// the old code called rand() here\n"
      "/* std::mutex was considered */\n"
      "const char* kDoc = \"uses system_clock\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, UnorderedIterOutsideDumpIsFine) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> table_;\n"
      "int Sum() {\n"
      "  int n = 0;\n"
      "  for (const auto& [k, v] : table_) n += v;\n"
      "  return n;\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "unordered-iter-in-dump"));
}

TEST(LintRules, UnorderedBeginInSerializeIsFlagged) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "#include <unordered_set>\n"
      "std::unordered_set<int> seen_;\n"
      "void Serialize() {\n"
      "  auto it = seen_.begin();\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "unordered-iter-in-dump"));
}

TEST(LintRules, SwitchOverCharWithDefaultIsFine) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "int Classify(char c) {\n"
      "  switch (c) {\n"
      "    case 'a': return 1;\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "enum-switch-default"));
}

TEST(LintRules, SwitchOverEnumTypeNameIsFlagged) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "int Cost(core::LeaseMode m) {\n"
      "  switch (static_cast<LeaseMode>(m)) {\n"
      "    default: return 0;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "enum-switch-default"));
}

TEST(LintRules, ClockRuleExemptsLiveCliUtil) {
  const std::string text = "int Jitter() { return rand() % 10; }\n";
  EXPECT_FALSE(HasRule(LintFile("src/live/x.cc", text), "determinism-clock"));
  EXPECT_FALSE(HasRule(LintFile("src/cli/x.cc", text), "determinism-clock"));
  EXPECT_FALSE(HasRule(LintFile("src/util/x.cc", text), "determinism-clock"));
  EXPECT_TRUE(HasRule(LintFile("src/replay/x.cc", text), "determinism-clock"));
}

TEST(LintRules, SocketCcIsExemptFromNakedSend) {
  const std::string text = "long F(int fd) { return ::send(fd, 0, 0, 0); }\n";
  EXPECT_FALSE(HasRule(LintFile("src/live/socket.cc", text), "naked-send"));
  EXPECT_TRUE(HasRule(LintFile("src/live/live_proxy.cc", text), "naked-send"));
}

TEST(LintRules, ThreadAnnotationsHeaderMayHoldRawMutex) {
  const std::string text = "#include <mutex>\nstd::mutex mu_;\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/util/thread_annotations.h", text), "raw-mutex"));
  EXPECT_TRUE(HasRule(LintFile("src/replay/farm.h", text), "raw-mutex"));
}

TEST(LintRules, ScanPruneFlagsIterationEraseNearLeaseState) {
  const std::vector<Finding> findings = LintFile(
      "src/core/x.cc",
      "void Prune(long long now) {\n"
      "  for (auto it = lease_until_.begin(); it != lease_until_.end();) {\n"
      "    if (it->second <= now) it = lease_until_.erase(it); else ++it;\n"
      "  }\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "scan-prune"));
}

TEST(LintRules, ScanPruneIgnoresIterationEraseWithoutLeaseContext) {
  // The delivery sweeps erase from bounded pending-write sets; without the
  // lease-state spellings nearby they are not prune loops.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "void Sweep() {\n"
      "  for (auto it = pending_.begin(); it != pending_.end();) {\n"
      "    if (it->second.done()) it = pending_.erase(it); else ++it;\n"
      "  }\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "scan-prune"));
}

TEST(LintRules, WheelInternalsExemptFromScanPrune) {
  const std::string text =
      "void Compact(long long now) {\n"
      "  for (auto it = by_expiry_.begin(); it != by_expiry_.end();) {\n"
      "    if (!LeaseActive(it->second, now)) it = by_expiry_.erase(it);\n"
      "    else ++it;\n"
      "  }\n"
      "}\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/core/timer_wheel.h", text), "scan-prune"));
  EXPECT_FALSE(HasRule(LintFile("src/core/site_list.h", text), "scan-prune"));
  EXPECT_TRUE(HasRule(LintFile("src/core/table.cc", text), "scan-prune"));
}

TEST(LintRules, NakedEvictFlagsBudgetEraseOutsideKernel) {
  const std::string text =
      "void MakeRoom(unsigned long long incoming) {\n"
      "  while (bytes_used_ + incoming > capacity_bytes_) {\n"
      "    bytes_used_ -= sizes_[lru_.back()];\n"
      "    sizes_.erase(lru_.back());\n"
      "    lru_.pop_back();\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/replay/x.cc", text), "naked-evict"));
  // The kernel and its host cache own the sanctioned loop.
  EXPECT_FALSE(HasRule(LintFile("src/http/proxy_cache.cc", text), "naked-evict"));
  EXPECT_FALSE(
      HasRule(LintFile("src/http/eviction/gds_policy.h", text), "naked-evict"));
}

TEST(LintRules, NakedEvictIgnoresEraseWithoutBudgetContext) {
  // Plain container maintenance near no byte budget is not an eviction loop.
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "void Forget(const std::string& key) {\n"
      "  sizes_.erase(key);\n"
      "  order_.pop_back();\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "naked-evict"));
}

TEST(LintRules, AllowOnPreviousLineSuppresses) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// webcc-lint: allow(determinism-clock) — justified\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, AllowForOneRuleDoesNotSilenceAnother) {
  const std::vector<Finding> findings = LintFile(
      "src/replay/x.cc",
      "// webcc-lint: allow(raw-mutex)\n"
      "int Jitter() { return rand() % 10; }\n");
  EXPECT_TRUE(HasRule(findings, "determinism-clock"));
}

}  // namespace
}  // namespace webcc::lint
