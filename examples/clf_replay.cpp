// Replay a real web-server log (Common Log Format) under the three
// consistency approaches.
//
//   ./clf_replay access.log [mean_lifetime_days]
//
// The paper replays five Internet Traffic Archive logs; point this tool at
// any CLF access log (e.g. the ITA's NASA or ClarkNet sets) to run the same
// experiment on real traffic. Without an argument it demonstrates the
// pipeline by writing a synthetic trace out as CLF, reading it back, and
// replaying that.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "replay/engine.h"
#include "trace/clf.h"
#include "trace/summary.h"
#include "trace/workload.h"
#include "util/format.h"

using namespace webcc;

int main(int argc, char** argv) {
  const double lifetime_days = argc > 2 ? std::strtod(argv[2], nullptr) : 14;

  trace::Trace trace;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    trace::ClfParseStats stats;
    trace = trace::ReadClf(in, argv[1], &stats);
    std::printf("parsed %s: %llu lines, %llu accepted GETs, %llu skipped, "
                "%llu malformed\n",
                argv[1], static_cast<unsigned long long>(stats.lines),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.skipped),
                static_cast<unsigned long long>(stats.malformed));
  } else {
    // No log supplied: round-trip a synthetic trace through CLF so the demo
    // still exercises the real parser.
    trace::WorkloadConfig workload;
    workload.name = "clf-demo";
    workload.duration = 6 * kHour;
    workload.total_requests = 8000;
    workload.num_documents = 400;
    workload.num_clients = 200;
    std::stringstream clf;
    trace::WriteClf(trace::GenerateTrace(workload), clf);
    trace = trace::ReadClf(clf, "clf-demo");
    std::printf("no log given; replaying a synthetic trace round-tripped "
                "through the CLF reader\n");
  }

  if (const std::string problem = trace.Validate(); !problem.empty()) {
    std::fprintf(stderr, "trace invalid: %s\n", problem.c_str());
    return 1;
  }
  const trace::TraceSummary summary = trace::Summarize(trace);
  std::printf("trace: %s requests over %s, %llu files, avg %s, "
              "max popularity %llu\n\n",
              util::WithCommas(static_cast<std::int64_t>(
                                   summary.total_requests)).c_str(),
              util::HumanDuration(trace.duration).c_str(),
              static_cast<unsigned long long>(summary.num_files),
              util::HumanBytes(static_cast<std::uint64_t>(
                                   summary.avg_file_size_bytes)).c_str(),
              static_cast<unsigned long long>(summary.max_popularity));

  for (const core::Protocol protocol :
       {core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
        core::Protocol::kInvalidation}) {
    replay::ReplayConfig config;
    config.protocol = protocol;
    config.trace = &trace;
    config.mean_lifetime = FromSeconds(lifetime_days * 86400);
    const replay::ReplayMetrics metrics = replay::RunReplay(config);
    std::printf("%-16s %s\n", core::ToString(protocol),
                metrics.Summary().c_str());
  }
  return 0;
}
