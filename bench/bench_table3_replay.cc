// Regenerates Table 3: full trace replays of EPA (50-day mean file
// lifetime), SASK (14-day) and ClarkNet (50-day) under the three
// consistency approaches.
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("=== Table 3: replay results for EPA, SASK, ClarkNet ===\n\n");
  webcc::bench::RunAndPrintExperiments(webcc::replay::Table3Experiments());
  std::printf(
      "paper's reading: invalidation performs within a few percent of\n"
      "adaptive TTL on every metric while guaranteeing freshness;\n"
      "polling-every-time sends 10-50%% more messages, loads the server\n"
      "CPU hardest, and has the worst minimum latency. SASK shows adaptive\n"
      "TTL's stale hits reaching ~1%% of file transfers.\n");
  return 0;
}
