// Tests for the webcc command-line tool: flag parsing and the subcommands
// (driven through streams and temp files, no subprocesses).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "cli/flags.h"
#include "synth/scenario.h"

namespace webcc::cli {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "webcc");
  std::string error;
  const auto flags =
      Flags::Parse(static_cast<int>(args.size()), args.data(), &error);
  EXPECT_TRUE(flags.has_value()) << error;
  return *flags;
}

// --- flag parsing --------------------------------------------------------------

TEST(Flags, PositionalThenFlags) {
  const Flags flags = MakeFlags({"replay", "--in", "x.log", "--two-tier"});
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "replay");
  EXPECT_EQ(flags.GetString("in", ""), "x.log");
  EXPECT_TRUE(flags.GetBool("two-tier"));
  EXPECT_FALSE(flags.GetBool("multicast"));
}

TEST(Flags, EqualsSyntax) {
  const Flags flags = MakeFlags({"generate", "--requests=500", "--zipf=0.9"});
  EXPECT_EQ(flags.GetInt("requests", 0), 500);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("zipf", 0), 0.9);
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags flags = MakeFlags({"generate"});
  EXPECT_EQ(flags.GetInt("requests", 123), 123);
  EXPECT_EQ(flags.GetString("out", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(*flags.GetDouble("zipf", 1.5), 1.5);
}

TEST(Flags, UnparseableValueIsNullopt) {
  const Flags flags = MakeFlags({"g", "--requests", "abc", "--zipf", "x"});
  EXPECT_FALSE(flags.GetInt("requests", 0).has_value());
  EXPECT_FALSE(flags.GetDouble("zipf", 0).has_value());
}

TEST(Flags, SwitchBeforeAnotherFlag) {
  const Flags flags = MakeFlags({"replay", "--two-tier", "--multicast"});
  EXPECT_TRUE(flags.GetBool("two-tier"));
  EXPECT_TRUE(flags.GetBool("multicast"));
}

TEST(Flags, NegativeNumbersAsValues) {
  const Flags flags = MakeFlags({"x", "--seed=-5"});
  EXPECT_EQ(flags.GetInt("seed", 0), -5);
}

TEST(Flags, RejectsTripleDash) {
  const char* args[] = {"webcc", "cmd", "---bad"};
  std::string error;
  EXPECT_FALSE(Flags::Parse(3, args, &error).has_value());
  EXPECT_NE(error.find("---bad"), std::string::npos);
}

TEST(Flags, UnusedFlagsReported) {
  const Flags flags = MakeFlags({"cmd", "--used", "1", "--typo", "2"});
  (void)flags.GetInt("used", 0);
  const auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// --- ParseProtocol ---------------------------------------------------------------

TEST(ParseProtocol, AllNamesAndAliases) {
  EXPECT_EQ(ParseProtocol("ttl"), core::Protocol::kAdaptiveTtl);
  EXPECT_EQ(ParseProtocol("adaptive-ttl"), core::Protocol::kAdaptiveTtl);
  EXPECT_EQ(ParseProtocol("poll"), core::Protocol::kPollEveryTime);
  EXPECT_EQ(ParseProtocol("polling"), core::Protocol::kPollEveryTime);
  EXPECT_EQ(ParseProtocol("invalidation"), core::Protocol::kInvalidation);
  EXPECT_EQ(ParseProtocol("inv"), core::Protocol::kInvalidation);
  EXPECT_EQ(ParseProtocol("pcv"), core::Protocol::kPiggybackValidation);
  EXPECT_EQ(ParseProtocol("psi"), core::Protocol::kPiggybackInvalidation);
  EXPECT_FALSE(ParseProtocol("nfs").has_value());
}

TEST(ParseProtocol, RoundTripsThroughToString) {
  constexpr core::Protocol kAll[] = {
      core::Protocol::kAdaptiveTtl, core::Protocol::kPollEveryTime,
      core::Protocol::kInvalidation, core::Protocol::kPiggybackValidation,
      core::Protocol::kPiggybackInvalidation};
  for (const core::Protocol protocol : kAll) {
    EXPECT_EQ(ParseProtocol(core::ToString(protocol)), protocol)
        << core::ToString(protocol);
  }
}

TEST(ParseLeaseMode, AllNamesAndAliases) {
  EXPECT_EQ(ParseLeaseMode("none"), core::LeaseMode::kNone);
  EXPECT_EQ(ParseLeaseMode("fixed"), core::LeaseMode::kFixed);
  EXPECT_EQ(ParseLeaseMode("two-tier"), core::LeaseMode::kTwoTier);
  EXPECT_EQ(ParseLeaseMode("twotier"), core::LeaseMode::kTwoTier);
  EXPECT_EQ(ParseLeaseMode("two_tier"), core::LeaseMode::kTwoTier);
  EXPECT_FALSE(ParseLeaseMode("volume").has_value());
  EXPECT_FALSE(ParseLeaseMode("").has_value());
}

TEST(ParseLeaseMode, RoundTripsThroughToString) {
  constexpr core::LeaseMode kAll[] = {
      core::LeaseMode::kNone, core::LeaseMode::kFixed,
      core::LeaseMode::kTwoTier};
  for (const core::LeaseMode mode : kAll) {
    EXPECT_EQ(ParseLeaseMode(core::ToString(mode)), mode)
        << core::ToString(mode);
  }
}

// --- commands ----------------------------------------------------------------------

class CliCommandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char name[] = "/tmp/webcc_cli_XXXXXX";
    const int fd = mkstemp(name);
    ASSERT_GE(fd, 0);
    close(fd);
    path_ = name;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  int Run(std::vector<const char*> args) {
    out_.str("");
    err_.str("");
    return RunCli(MakeFlags(std::move(args)), out_, err_);
  }

  std::string path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliCommandTest, NoCommandPrintsUsage) {
  EXPECT_NE(Run({}), 0);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(CliCommandTest, UnknownCommandFails) {
  EXPECT_NE(Run({"frobnicate"}), 0);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliCommandTest, HelpSucceeds) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("generate"), std::string::npos);
}

TEST_F(CliCommandTest, ProtocolsListsAllFive) {
  EXPECT_EQ(Run({"protocols"}), 0);
  EXPECT_NE(out_.str().find("Invalidation"), std::string::npos);
  EXPECT_NE(out_.str().find("PCV"), std::string::npos);
  EXPECT_NE(out_.str().find("PSI"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateWritesClf) {
  ASSERT_EQ(Run({"generate", "--requests", "300", "--documents", "40",
                 "--clients", "20", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  std::ifstream in(path_);
  std::string line;
  std::string last_line;
  int lines = 0;
  while (std::getline(in, line)) {
    last_line = line;
    ++lines;
  }
  EXPECT_EQ(lines, 300);
  EXPECT_NE(last_line.find("GET"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateToStdout) {
  ASSERT_EQ(Run({"generate", "--requests", "5", "--documents", "3",
                 "--clients", "2", "--duration-hours", "1"}),
            0);
  EXPECT_NE(out_.str().find("HTTP/1.0"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateRejectsBadCounts) {
  EXPECT_NE(Run({"generate", "--requests", "0"}), 0);
  EXPECT_NE(Run({"generate", "--requests", "abc"}), 0);
}

TEST_F(CliCommandTest, GenerateRejectsUnknownPreset) {
  EXPECT_NE(Run({"generate", "--preset", "MIT"}), 0);
  EXPECT_NE(err_.str().find("unknown preset"), std::string::npos);
}

TEST_F(CliCommandTest, GenerateRejectsTypoFlags) {
  EXPECT_NE(Run({"generate", "--requets", "100"}), 0);
  EXPECT_NE(err_.str().find("--requets"), std::string::npos);
}

TEST_F(CliCommandTest, SummarizeRoundTrip) {
  ASSERT_EQ(Run({"generate", "--requests", "400", "--documents", "50",
                 "--clients", "25", "--duration-hours", "2", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"summarize", "--in", path_.c_str()}), 0);
  EXPECT_NE(out_.str().find("400"), std::string::npos);
  EXPECT_NE(out_.str().find("Repeat-request fraction"), std::string::npos);
}

TEST_F(CliCommandTest, SummarizeMissingFileFails) {
  EXPECT_NE(Run({"summarize", "--in", "/nonexistent/x.log"}), 0);
}

TEST_F(CliCommandTest, SummarizeNeedsInput) {
  EXPECT_NE(Run({"summarize"}), 0);
  EXPECT_NE(err_.str().find("--preset NAME or --in FILE"), std::string::npos);
}

TEST_F(CliCommandTest, FilterAbsorbsRepeats) {
  ASSERT_EQ(Run({"generate", "--requests", "500", "--documents", "20",
                 "--clients", "10", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"filter", "--in", path_.c_str(), "--browser-ttl-minutes",
                 "120"}),
            0);
  EXPECT_NE(err_.str().find("absorbed"), std::string::npos);
  // The filtered CLF goes to stdout and is strictly smaller.
  int lines = 0;
  std::istringstream filtered(out_.str());
  std::string line;
  while (std::getline(filtered, line)) ++lines;
  EXPECT_GT(lines, 0);
  EXPECT_LT(lines, 500);
}

TEST_F(CliCommandTest, ReplaySingleProtocol) {
  ASSERT_EQ(Run({"generate", "--requests", "400", "--documents", "50",
                 "--clients", "25", "--duration-hours", "2", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--lifetime-days", "1"}),
            0);
  EXPECT_NE(out_.str().find("Invalidation"), std::string::npos);
  EXPECT_NE(out_.str().find("site lists"), std::string::npos);
  EXPECT_NE(out_.str().find("violations=0"), std::string::npos);
}

TEST_F(CliCommandTest, ReplayAllRunsThree) {
  ASSERT_EQ(Run({"generate", "--requests", "300", "--documents", "40",
                 "--clients", "20", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--lifetime-days", "2"}),
            0);
  EXPECT_NE(out_.str().find("Adaptive TTL"), std::string::npos);
  EXPECT_NE(out_.str().find("Poll-Every-Time"), std::string::npos);
  EXPECT_NE(out_.str().find("Invalidation"), std::string::npos);
}

TEST_F(CliCommandTest, ReplayTwoTierLease) {
  ASSERT_EQ(Run({"generate", "--requests", "300", "--documents", "40",
                 "--clients", "20", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--two-tier", "--lifetime-days", "1"}),
            0);
}

TEST_F(CliCommandTest, ReplayRejectsUnknownProtocol) {
  ASSERT_EQ(Run({"generate", "--requests", "100", "--documents", "10",
                 "--clients", "5", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  EXPECT_NE(Run({"replay", "--in", path_.c_str(), "--protocol", "afs"}), 0);
  // The error must teach the valid spellings.
  for (const char* token : {"ttl", "poll", "invalidation", "pcv", "psi"}) {
    EXPECT_NE(err_.str().find(token), std::string::npos) << err_.str();
  }
}

TEST_F(CliCommandTest, ReplayLeaseFlagSelectsMode) {
  ASSERT_EQ(Run({"generate", "--requests", "300", "--documents", "40",
                 "--clients", "20", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--lease", "two-tier", "--lifetime-days",
                 "1"}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--lease", "fixed", "--lease-days", "1",
                 "--lifetime-days", "1"}),
            0);
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--lease", "none", "--lifetime-days", "1"}),
            0);
}

TEST_F(CliCommandTest, ReplayRejectsUnknownLease) {
  ASSERT_EQ(Run({"generate", "--requests", "100", "--documents", "10",
                 "--clients", "5", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  EXPECT_NE(Run({"replay", "--in", path_.c_str(), "--lease", "volume"}), 0);
  for (const char* token : {"none", "fixed", "two-tier"}) {
    EXPECT_NE(err_.str().find(token), std::string::npos) << err_.str();
  }
}

TEST_F(CliCommandTest, ReplayRejectsLeaseFlagPlusTwoTierSwitch) {
  ASSERT_EQ(Run({"generate", "--requests", "100", "--documents", "10",
                 "--clients", "5", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  EXPECT_NE(
      Run({"replay", "--in", path_.c_str(), "--lease", "fixed", "--two-tier"}),
      0);
  EXPECT_NE(err_.str().find("mutually exclusive"), std::string::npos);
}

TEST_F(CliCommandTest, ReplayRejectsPresetAndInTogether) {
  EXPECT_NE(Run({"replay", "--preset", "EPA", "--in", path_.c_str()}), 0);
  EXPECT_NE(err_.str().find("mutually exclusive"), std::string::npos);
}

TEST_F(CliCommandTest, ReplayTraceOutThenSummarize) {
  ASSERT_EQ(Run({"generate", "--requests", "400", "--documents", "50",
                 "--clients", "25", "--duration-hours", "2", "--out",
                 path_.c_str()}),
            0);
  const std::string trace_path = path_ + ".jsonl";
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--protocol",
                 "invalidation", "--lifetime-days", "1", "--trace-out",
                 trace_path.c_str()}),
            0);
  // The stream summarizes clean (exit 0 == no malformed lines, every
  // referenced id interned) and the counts show the protocol ran.
  EXPECT_EQ(Run({"trace", "summarize", "--in", trace_path.c_str()}), 0);
  EXPECT_NE(out_.str().find("runs:      1"), std::string::npos);
  EXPECT_NE(out_.str().find("get_sent"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST_F(CliCommandTest, ReplayMetricsOutMergesProtocols) {
  ASSERT_EQ(Run({"generate", "--requests", "300", "--documents", "40",
                 "--clients", "20", "--duration-hours", "1", "--out",
                 path_.c_str()}),
            0);
  const std::string metrics_path = path_ + ".json";
  // No --protocol: all three run, so the dump is prefixed per protocol.
  ASSERT_EQ(Run({"replay", "--in", path_.c_str(), "--lifetime-days", "2",
                 "--metrics-out", metrics_path.c_str()}),
            0);
  std::ifstream in(metrics_path);
  std::stringstream json;
  json << in.rdbuf();
  EXPECT_NE(json.str().find("\"ttl.replay.requests_issued\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"poll.replay.requests_issued\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"invalidation.replay.requests_issued\""),
            std::string::npos);
  std::remove(metrics_path.c_str());
}

TEST_F(CliCommandTest, TraceSummarizeFlagsBadStreams) {
  {
    std::ofstream bad(path_);
    bad << "{\"t\":0,\"e\":\"run_begin\"}\n"
        << "not json at all\n";
  }
  EXPECT_NE(Run({"trace", "summarize", "--in", path_.c_str()}), 0);
}

TEST_F(CliCommandTest, TraceRequiresSummarizeVerb) {
  EXPECT_NE(Run({"trace"}), 0);
  EXPECT_NE(Run({"trace", "frobnicate", "--in", path_.c_str()}), 0);
}

// --- synth + actionable input errors ------------------------------------------------

TEST_F(CliCommandTest, ReplayUnreadableTraceExplainsAndHints) {
  EXPECT_NE(Run({"replay", "--in", "/nonexistent/trace.log"}), 0);
  EXPECT_NE(err_.str().find("error: /nonexistent/trace.log: cannot open"),
            std::string::npos)
      << err_.str();
  EXPECT_NE(err_.str().find("hint: "), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("--preset NAME"), std::string::npos)
      << err_.str();
}

TEST_F(CliCommandTest, ReplayScenarioParseErrorPointsAtOffset) {
  {
    std::ofstream bad(path_);
    bad << "{\"sites\": 999999999}";
  }
  EXPECT_NE(Run({"replay", "--scenario", path_.c_str()}), 0);
  EXPECT_NE(err_.str().find("sites out of range"), std::string::npos)
      << err_.str();
  EXPECT_NE(err_.str().find("at offset"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("hint: "), std::string::npos) << err_.str();
}

TEST_F(CliCommandTest, ReplayRejectsScenarioPlusPreset) {
  EXPECT_NE(Run({"replay", "--scenario", path_.c_str(), "--preset", "EPA"}),
            0);
  EXPECT_NE(err_.str().find("mutually exclusive"), std::string::npos)
      << err_.str();
}

TEST_F(CliCommandTest, SynthDigestIsDeterministic) {
  ASSERT_EQ(Run({"synth", "--sites", "200", "--documents", "100",
                 "--requests", "500", "--seed", "7", "--digest"}),
            0);
  const std::string first = out_.str();
  ASSERT_NE(first.find("workload_digest "), std::string::npos) << first;
  ASSERT_EQ(Run({"synth", "--sites", "200", "--documents", "100",
                 "--requests", "500", "--seed", "7", "--digest"}),
            0);
  EXPECT_EQ(out_.str(), first);
  ASSERT_EQ(Run({"synth", "--sites", "200", "--documents", "100",
                 "--requests", "500", "--seed", "8", "--digest"}),
            0);
  EXPECT_NE(out_.str(), first) << "seed must change the workload digest";
}

TEST_F(CliCommandTest, SynthRejectsBadFlagRanges) {
  EXPECT_NE(Run({"synth", "--sites", "0"}), 0);
  EXPECT_NE(err_.str().find("sites"), std::string::npos) << err_.str();
  EXPECT_NE(Run({"synth", "--write-fraction", "0.95"}), 0);
  EXPECT_NE(err_.str().find("write_fraction"), std::string::npos)
      << err_.str();
  EXPECT_NE(Run({"synth", "--locality", "1.5"}), 0);
}

TEST_F(CliCommandTest, SynthPrintConfigRoundTrips) {
  ASSERT_EQ(Run({"synth", "--sites", "300", "--documents", "120",
                 "--requests", "400", "--write-fraction", "0.2",
                 "--print-config"}),
            0);
  const std::string json = out_.str();
  synth::ScenarioConfig config;
  std::string error;
  ASSERT_TRUE(synth::FromJson(json, config, error)) << error;
  EXPECT_EQ(config.sites, 300u);
  EXPECT_EQ(synth::ToJson(config), json)
      << "--print-config must emit canonical JSON";
}

TEST_F(CliCommandTest, SynthScenarioFileReplayPrintsDigest) {
  {
    std::ofstream scenario(path_);
    scenario << "{\"name\": \"cli-smoke\", \"duration_s\": 600.000000, "
                "\"requests\": 300, \"sites\": 50, \"documents\": 40, "
                "\"write_fraction\": 0.100000, \"seed\": 5}";
  }
  ASSERT_EQ(Run({"synth", "--scenario", path_.c_str(), "--replay",
                 "--protocol", "invalidation"}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("Invalidation"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find("trace_digest "), std::string::npos)
      << out_.str();
}

TEST_F(CliCommandTest, SynthUnreadableScenarioExplains) {
  EXPECT_NE(Run({"synth", "--scenario", "/nonexistent/s.json"}), 0);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("hint: "), std::string::npos) << err_.str();
}

}  // namespace
}  // namespace webcc::cli
