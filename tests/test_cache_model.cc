// Model-based property test: ProxyCache against a deliberately simple
// reference implementation.
//
// The production cache combines an LRU list, a hash index, a URL index and
// a lazy-deletion TTL heap; the reference below is a plain vector with
// O(n) everything. Randomized operation sequences must keep the two in
// lockstep — membership, byte accounting, LRU victims and expired-first
// victims included.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "http/proxy_cache.h"
#include "util/rng.h"

namespace webcc::http {
namespace {

// The reference: exact semantics, no cleverness.
class ReferenceCache {
 public:
  ReferenceCache(std::uint64_t capacity, ReplacementPolicy policy)
      : capacity_(capacity), policy_(policy) {}

  struct Entry {
    std::string key;
    std::string url;
    std::uint64_t size = 0;
    Time ttl_expires = kNeverExpires;
    std::uint64_t stamp = 0;  // insertion order, for expiry tie-breaks
  };

  const Entry* Lookup(const std::string& key) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        // Promote to most recently used (front).
        Entry entry = entries_[i];
        entries_.erase(entries_.begin() + static_cast<long>(i));
        entries_.insert(entries_.begin(), entry);
        return &entries_.front();
      }
    }
    return nullptr;
  }

  bool Contains(const std::string& key) const {
    return std::any_of(entries_.begin(), entries_.end(),
                       [&key](const Entry& e) { return e.key == key; });
  }

  void Insert(Entry entry, Time now) {
    Erase(entry.key);
    if (entry.size > capacity_) return;
    while (bytes_ + entry.size > capacity_) EvictOne(now);
    bytes_ += entry.size;
    entry.stamp = next_stamp_++;
    entries_.insert(entries_.begin(), std::move(entry));
  }

  bool Erase(const std::string& key) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].key == key) {
        bytes_ -= entries_[i].size;
        entries_.erase(entries_.begin() + static_cast<long>(i));
        return true;
      }
    }
    return false;
  }

  std::size_t EraseByUrl(const std::string& url) {
    std::size_t erased = 0;
    for (std::size_t i = entries_.size(); i > 0; --i) {
      if (entries_[i - 1].url == url) {
        bytes_ -= entries_[i - 1].size;
        entries_.erase(entries_.begin() + static_cast<long>(i - 1));
        ++erased;
      }
    }
    return erased;
  }

  std::uint64_t bytes() const { return bytes_; }
  std::size_t size() const { return entries_.size(); }

 private:
  void EvictOne(Time now) {
    ASSERT_FALSE(entries_.empty());
    if (policy_ == ReplacementPolicy::kExpiredFirstLru) {
      // Evict the earliest-expiring expired entry, if any (the production
      // heap pops by expiry order).
      long victim = -1;
      Time earliest = kNeverExpires;
      std::uint64_t earliest_stamp = 0;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& entry = entries_[i];
        if (entry.ttl_expires > now) continue;
        if (victim < 0 || entry.ttl_expires < earliest ||
            (entry.ttl_expires == earliest && entry.stamp < earliest_stamp)) {
          earliest = entry.ttl_expires;
          earliest_stamp = entry.stamp;
          victim = static_cast<long>(i);
        }
      }
      if (victim >= 0) {
        bytes_ -= entries_[static_cast<std::size_t>(victim)].size;
        entries_.erase(entries_.begin() + victim);
        return;
      }
    }
    bytes_ -= entries_.back().size;
    entries_.pop_back();  // LRU tail
  }

  std::uint64_t capacity_;
  ReplacementPolicy policy_;
  std::uint64_t bytes_ = 0;
  std::uint64_t next_stamp_ = 1;
  std::vector<Entry> entries_;
};

CacheEntry MakeEntry(int doc, int owner, std::uint64_t size, Time ttl) {
  CacheEntry entry;
  entry.url = "/d" + std::to_string(doc);
  entry.owner = "c" + std::to_string(owner);
  entry.key = entry.url + "@" + entry.owner;
  entry.size_bytes = size;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

struct ModelParams {
  ReplacementPolicy policy;
  std::uint64_t seed;
};

class CacheModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(CacheModelTest, RandomOperationsStayInLockstep) {
  const ModelParams params = GetParam();
  constexpr std::uint64_t kCapacity = 2000;
  ProxyCache cache(kCapacity, params.policy);
  ReferenceCache reference(kCapacity, params.policy);
  util::Rng rng(params.seed);

  Time now = 0;
  for (int step = 0; step < 4000; ++step) {
    now += static_cast<Time>(rng.NextBelow(50));
    const int doc = static_cast<int>(rng.NextBelow(12));
    const int owner = static_cast<int>(rng.NextBelow(3));
    const std::string key =
        "/d" + std::to_string(doc) + "@c" + std::to_string(owner);

    switch (rng.NextBelow(5)) {
      case 0:
      case 1: {  // insert
        // Distinct sizes/TTLs exercise both eviction paths; TTLs near `now`
        // flip between fresh and expired as time advances.
        const std::uint64_t size = 100 + rng.NextBelow(400);
        const Time ttl = rng.NextBool(0.3)
                             ? kNeverExpires
                             : now + static_cast<Time>(rng.NextBelow(120)) -
                                   40;
        cache.Insert(MakeEntry(doc, owner, size, ttl), now);
        ReferenceCache::Entry entry;
        entry.key = key;
        entry.url = "/d" + std::to_string(doc);
        entry.size = size;
        entry.ttl_expires = ttl;
        reference.Insert(entry, now);
        break;
      }
      case 2: {  // lookup (promotes in both)
        CacheEntry* got = cache.Lookup(key);
        const auto* expected = reference.Lookup(key);
        ASSERT_EQ(got != nullptr, expected != nullptr) << "step " << step;
        if (got != nullptr) {
          EXPECT_EQ(got->size_bytes, expected->size);
          EXPECT_EQ(got->ttl_expires, expected->ttl_expires);
        }
        break;
      }
      case 3: {  // erase
        EXPECT_EQ(cache.Erase(key), reference.Erase(key)) << "step " << step;
        break;
      }
      case 4: {  // erase by url
        const std::string url = "/d" + std::to_string(doc);
        EXPECT_EQ(cache.EraseByUrl(url), reference.EraseByUrl(url))
            << "step " << step;
        break;
      }
    }

    ASSERT_EQ(cache.bytes_used(), reference.bytes())
        << "step " << step << " at now=" << now;
    ASSERT_EQ(cache.entry_count(), reference.size()) << "step " << step;
  }

  // Final membership sweep.
  for (int doc = 0; doc < 12; ++doc) {
    for (int owner = 0; owner < 3; ++owner) {
      const std::string key =
          "/d" + std::to_string(doc) + "@c" + std::to_string(owner);
      EXPECT_EQ(cache.Peek(key) != nullptr, reference.Contains(key)) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheModelTest,
    ::testing::Values(ModelParams{ReplacementPolicy::kLru, 1},
                      ModelParams{ReplacementPolicy::kLru, 2},
                      ModelParams{ReplacementPolicy::kLru, 3},
                      ModelParams{ReplacementPolicy::kExpiredFirstLru, 4},
                      ModelParams{ReplacementPolicy::kExpiredFirstLru, 5},
                      ModelParams{ReplacementPolicy::kExpiredFirstLru, 6},
                      ModelParams{ReplacementPolicy::kExpiredFirstLru, 7},
                      ModelParams{ReplacementPolicy::kExpiredFirstLru, 8}),
    [](const ::testing::TestParamInfo<ModelParams>& info) {
      return std::string(info.param.policy == ReplacementPolicy::kLru
                             ? "Lru"
                             : "ExpiredFirst") +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace webcc::http
