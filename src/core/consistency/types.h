// Typed inputs and outputs of the consistency kernel.
//
// The kernel is pure: a policy looks at an EntryMeta snapshot (the
// consistency-relevant fields of a cached copy) or a ReplyMeta (the
// consistency-relevant fields of a server reply) and returns a Decision
// value. It never mutates a cache, sends a message, or reads a clock — the
// replay engine and the live stack both execute the returned decisions, so
// the simulated and deployed protocols are the same code by construction
// (tests/test_differential.cc asserts this end to end).
#pragma once

#include <limits>

#include "net/message.h"
#include "util/time.h"

namespace webcc::core::consistency {

// Sentinel expiry meaning "never expires"; bit-identical to
// http::kNeverExpires (checked by a static_assert in policy.cc) so entry
// fields can be copied through EntryMeta without translation.
inline constexpr Time kNeverExpires = std::numeric_limits<Time>::max();

// Snapshot of a cached copy's consistency state. Mirrors the protocol
// fields of http::CacheEntry without depending on the cache itself.
struct EntryMeta {
  Time last_modified = 0;
  Time fetched_at = 0;
  Time ttl_expires = kNeverExpires;
  Time lease_expires = kNeverExpires;
  // Set by server-address invalidations and proxy recovery: the copy must
  // revalidate before it may be served.
  bool questionable = false;
};

// The consistency-relevant fields of a 200/304 reply.
struct ReplyMeta {
  Time last_modified = 0;
  // Absolute lease expiry granted with the reply, or net::kNoLease.
  Time lease_until = net::kNoLease;
};

// --- client-side decisions ---------------------------------------------------

// What to do when a request finds a cached copy.
enum class HitAction {
  kServeLocal,  // serve the copy without contacting the server
  kValidate,    // send If-Modified-Since before serving
};

struct HitDecision {
  HitAction action = HitAction::kValidate;
  // The validation exists only because a lease lapsed (the Section 6
  // renewal traffic the two-tier scheme is designed to bound).
  bool lease_renewal = false;
};

// Consistency state for a freshly transferred copy (a 200 reply).
struct InsertDecision {
  Time ttl_expires = kNeverExpires;
  Time lease_expires = kNeverExpires;
};

// Mutations to apply to an existing copy certified fresh by a 304.
struct ValidateDecision {
  // The 304 always clears the questionable flag; kept explicit so the
  // decision record is self-describing.
  bool clear_questionable = true;
  bool set_ttl = false;
  Time ttl_expires = kNeverExpires;
  bool set_lease = false;
  Time lease_expires = kNeverExpires;
};

// --- server-side decisions ---------------------------------------------------

// What the server owes when a document modification is detected.
struct WriteDecision {
  // Fan INVALIDATE messages out to the registered sites (and only then
  // consider the write complete — the strong-consistency contract).
  bool fan_out_invalidations = false;
};

// Static capabilities of a protocol: which optional machinery each side of
// the connection runs. Both stacks consult the same traits, so enabling a
// protocol enables the same code paths in simulation and deployment.
struct Traits {
  // Server registers requesting sites, grants leases, and pushes
  // INVALIDATEs on write (the paper's invalidation protocol); a proxy-side
  // stale serve after write completion is a strong-consistency violation.
  bool invalidation_callbacks = false;
  // Proxy piggybacks its TTL-expired entries on server contacts for bulk
  // validation (PCV).
  bool piggyback_validation = false;
  // Server attaches the list of documents modified since the proxy's last
  // contact to every reply (PSI).
  bool piggyback_invalidation = false;
  // Local serves are governed by the adaptive TTL (Alex) clock.
  bool ttl_based = false;
};

}  // namespace webcc::core::consistency
