// Fixture: the push side nests outbox_mu_ inside table_mu_, the drain
// side nests them the other way round — a lock-order cycle whose witness
// chain names both acquisition sites.
namespace util {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace util

class InvertedFanout {
 public:
  void PushInvalidation() {
    const util::MutexLock table(table_mu_);
    const util::MutexLock outbox(outbox_mu_);  // table -> outbox
  }
  void DrainOutbox() {
    const util::MutexLock outbox(outbox_mu_);
    const util::MutexLock table(table_mu_);  // outbox -> table: cycle
  }

 private:
  util::Mutex table_mu_;
  util::Mutex outbox_mu_;
};
