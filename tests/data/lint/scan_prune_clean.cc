// Fixture pair of scan_prune_violation.cc: the same expiry work routed
// through the timer wheel's authority callback. No iteration-erase loop, so
// no scan-prune finding.
struct Wheel {
  template <typename Authority>
  int Advance(long long now, Authority authority);
};

struct WheelPruneTable {
  Wheel wheel_;

  int Prune(long long now) {
    return wheel_.Advance(
        now, [](unsigned url, unsigned site) -> long long { return -1; });
  }
};
