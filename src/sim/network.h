// Point-to-point network model with partitions, node failures, and
// TCP-style retry.
//
// Models the replay testbed's interconnect: a fixed one-way latency plus a
// bandwidth term per message. Failure injection mirrors the paper's three
// scenarios — a down proxy (connection refused; sender may give up, the
// proxy revalidates everything on recovery), a down server site, and a
// network partition (sender retries periodically until the link heals).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_sink.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace webcc::sim {

// Dense small integers; the replay assigns one per host (pseudo-clients,
// pseudo-server).
using NodeId = int;

struct NetworkConfig {
  // One-way propagation latency between any two distinct nodes. The default
  // approximates the paper's switched 100 Mb/s Ethernet.
  Time one_way_latency = 350 * kMicrosecond;
  // Link bandwidth used for the serialization term of the delivery delay.
  double bandwidth_bps = 100e6;
  // Fixed per-message framing overhead added to the payload (TCP/IP).
  std::uint32_t per_message_overhead_bytes = 40;
  // Interval between retries of a reliable send across a partition.
  Time retry_interval = 5 * kSecond;

  // A wide-area profile for the Section 5.2 "on the real Internet"
  // extrapolation: ~35 ms one-way, 1.5 Mb/s.
  static NetworkConfig Lan() { return NetworkConfig{}; }
  static NetworkConfig Wan() {
    NetworkConfig config;
    config.one_way_latency = 35 * kMillisecond;
    config.bandwidth_bps = 1.5e6;
    return config;
  }
};

class Network {
 public:
  // Outcome reported to SendReliable's completion callback.
  enum class SendResult {
    kDelivered,      // arrived at the destination
    kRefused,        // destination node down: TCP connect refused
    kGaveUp,         // partition outlived the retry budget
  };

  // Delivery handlers are scheduled on the simulator queue; sim::Task keeps
  // small captures inline. The done callback is invoked at the sender (not
  // scheduled), so it stays a std::function.
  using DeliverFn = Simulator::Action;
  using ReliableDoneFn = std::function<void(SendResult, Time /*done_at*/)>;

  Network(Simulator& sim, NetworkConfig config)
      : sim_(sim), config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- failure injection -------------------------------------------------
  void Partition(NodeId a, NodeId b);
  void Heal(NodeId a, NodeId b);
  bool IsPartitioned(NodeId a, NodeId b) const;

  void SetNodeUp(NodeId node, bool up);
  bool IsNodeUp(NodeId node) const;

  // True when a message sent now from `from` would reach `to`.
  bool Reachable(NodeId from, NodeId to) const;

  // --- sending -----------------------------------------------------------

  // Serialization + propagation delay for a payload of `bytes`.
  Time TransferDelay(std::uint64_t bytes) const;

  // Best-effort datagram: delivered after TransferDelay unless the pair is
  // unreachable at send time, in which case it is dropped. Returns whether
  // the message was sent. `on_deliver` runs at the destination.
  bool Send(NodeId from, NodeId to, std::uint64_t bytes, DeliverFn on_deliver);

  // TCP-with-retry, the paper's transport for invalidations. If the
  // destination node is down the connection is refused immediately (the
  // recovering proxy revalidates, so the sender need not persist). If the
  // path is partitioned, the send retries every retry_interval up to
  // `max_retries` times (-1 = unbounded). `on_deliver` runs at delivery;
  // `done` reports the outcome at the sender.
  void SendReliable(NodeId from, NodeId to, std::uint64_t bytes,
                    DeliverFn on_deliver, ReliableDoneFn done,
                    int max_retries = -1);

  // --- accounting --------------------------------------------------------
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t messages_dropped() const { return messages_dropped_; }
  std::uint64_t retries() const { return retries_; }

  // Optional tracing: Partition/Heal emit kPartition/kPartitionHeal stamped
  // with the simulator clock (detail = the ordered node pair, a*1000+b).
  void set_trace_sink(obs::TraceSink* sink) { trace_sink_ = sink; }

  // Snapshots the delivery counters into `registry` under `prefix`.
  void ExportMetrics(obs::MetricsRegistry& registry,
                     std::string_view prefix) const;

 private:
  static std::pair<NodeId, NodeId> Ordered(NodeId a, NodeId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  void TryReliable(NodeId from, NodeId to, std::uint64_t bytes,
                   DeliverFn on_deliver, ReliableDoneFn done,
                   int retries_left);

  Simulator& sim_;
  NetworkConfig config_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::set<NodeId> down_nodes_;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t messages_dropped_ = 0;
  std::uint64_t retries_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace webcc::sim
