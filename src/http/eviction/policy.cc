#include "http/eviction/policy.h"

#include <string>

#include "http/eviction/gds_policy.h"
#include "http/eviction/lru_policy.h"
#include "util/check.h"

namespace webcc::http::eviction {

std::string_view ToString(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return "lru";
    case EvictionPolicyKind::kExpiredFirstLru:
      return "expired-first";
    case EvictionPolicyKind::kGds:
      return "gds";
  }
  WEBCC_CHECK_MSG(false, "unknown EvictionPolicyKind");
  return "";
}

bool ParseEvictionPolicyKind(std::string_view name, EvictionPolicyKind& out) {
  if (name == "lru") {
    out = EvictionPolicyKind::kLru;
  } else if (name == "expired-first") {
    out = EvictionPolicyKind::kExpiredFirstLru;
  } else if (name == "gds") {
    out = EvictionPolicyKind::kGds;
  } else {
    return false;
  }
  return true;
}

std::string_view ValidEvictionPolicyNames() { return "lru, expired-first, gds"; }

void EvictionPolicy::ExportStats(obs::MetricsRegistry& registry,
                                 std::string_view prefix) const {
  const auto name = [&prefix](std::string_view leaf) {
    std::string full(prefix);
    full += leaf;
    return full;
  };
  registry.SetCounter(name("policy_picks"), stats_.picks);
  registry.SetCounter(name("policy_expired_picks"), stats_.expired_picks);
}

std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind) {
  switch (kind) {
    case EvictionPolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case EvictionPolicyKind::kExpiredFirstLru:
      return std::make_unique<ExpiredFirstLruPolicy>();
    case EvictionPolicyKind::kGds:
      return std::make_unique<GdsPolicy>();
  }
  WEBCC_CHECK_MSG(false, "unknown EvictionPolicyKind");
  return nullptr;
}

}  // namespace webcc::http::eviction
