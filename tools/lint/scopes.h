// Lightweight declaration/scope parser over the token stream.
//
// Builds the structural facts the semantic passes need without a real C++
// parser: a tree of brace scopes classified as namespace / class / enum /
// function / lambda / switch / block, each function's (possibly qualified)
// name and enclosing class, `util::MutexLock` acquisitions with the scope
// they live in, and the thread-safety annotation facts —
// `WEBCC_GUARDED_BY` fields, `WEBCC_REQUIRES` contracts and
// `WEBCC_ACQUIRED_BEFORE`/`_AFTER` lock-order declarations.
//
// The parser is heuristic by design (it classifies statement heads, it
// does not resolve names), but the heuristics are tuned to this codebase's
// idiom and every misparse degrades to a plain kBlock scope — passes only
// act on scopes they positively classified.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tokenizer.h"

namespace webcc::lint {

enum class ScopeKind : unsigned char {
  kNamespace,
  kClass,
  kEnum,
  kFunction,
  kLambda,
  kSwitch,
  kBlock,
};

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  int parent = -1;
  // kClass: the class name. kFunction: the unqualified function name.
  std::string name;
  // For functions: the class the body belongs to — from the enclosing
  // class scope for inline definitions, or from the `C::f(...)` qualifier
  // for out-of-class definitions. Empty for free functions.
  std::string class_name;
  bool in_dump = false;    // inside a Dump/Snapshot/Serialize/... function
  bool no_tsa = false;     // WEBCC_NO_THREAD_SAFETY_ANALYSIS on the head
  bool ctor_dtor = false;  // constructor or destructor body
  bool switch_enum = false;  // kSwitch over a protocol-style enum
  int line = 0;              // line of the opening '{'
  // Code-token index ranges (into ScopeModel::code): the statement head
  // [head_begin, head_end) and the brace body [body_begin, body_end).
  std::size_t head_begin = 0, head_end = 0;
  std::size_t body_begin = 0, body_end = 0;
};

// One `util::MutexLock lock(expr)` acquisition.
struct LockAcquire {
  int scope = -1;         // innermost scope containing the statement
  std::string expr;       // normalized lock expression, e.g. "mu_"
  std::string canonical;  // class-qualified graph name, e.g. "Farm::mu_"
  std::size_t code_index = 0;  // position in ScopeModel::code
  int line = 0;
};

struct GuardedField {
  std::string class_name;
  std::string field;
  std::string guard;  // normalized mutex expression from the annotation
  int line = 0;       // declaration line (witness anchor)
  // WEBCC_PT_GUARDED_BY: only dereferences need the lock, not reads of the
  // pointer value itself.
  bool pointee_only = false;
};

// A declared lock-order edge: `before` must be acquired before `after`.
struct DeclaredOrder {
  std::string before;  // canonical lock names
  std::string after;
  int line = 0;
};

struct ScopeModel {
  std::vector<Token> tokens;       // full stream, comments included
  std::vector<std::size_t> code;   // indices of non-comment tokens
  std::vector<Scope> scopes;       // creation (= document) order
  std::vector<int> scope_of;       // innermost scope per code index (-1 top)
  std::vector<LockAcquire> locks;  // document order
  std::vector<GuardedField> guarded_fields;
  // "Class::Method" (or bare "Method") -> normalized required lock exprs.
  std::map<std::string, std::set<std::string>> requires_locks;
  std::vector<DeclaredOrder> declared_order;

  const Token& Tok(std::size_t code_index) const {
    return tokens[code[code_index]];
  }
  // Walks parents from `scope` (inclusive); true if any satisfies `pred`.
  template <typename Pred>
  bool AnyEnclosing(int scope, Pred pred) const {
    for (int s = scope; s >= 0; s = scopes[static_cast<std::size_t>(s)].parent) {
      if (pred(scopes[static_cast<std::size_t>(s)])) return true;
    }
    return false;
  }
};

// Function names whose bodies are byte-stable output paths.
bool IsDumpFunctionName(std::string_view name);

// Parses one file. Never fails; unparseable regions become kBlock scopes.
ScopeModel BuildScopeModel(std::vector<Token> tokens);

// Joins tokens [begin, end) of `model.code` with no spaces — the
// normalized-expression form used for lock names and guard matching.
std::string JoinTokens(const ScopeModel& model, std::size_t begin,
                       std::size_t end);

}  // namespace webcc::lint
