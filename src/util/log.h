// Minimal leveled logging to stderr.
//
// Default level is Warn so that library users see problems but replays stay
// quiet; benches and examples raise it when narrating runs. Thread-safe:
// each message is formatted into one buffer and written with a single call.
#pragma once

#include <string_view>

namespace webcc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style logging; no-op when `level` is below the configured level.
void Logf(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace webcc::util

#define WEBCC_LOG_DEBUG(...) \
  ::webcc::util::Logf(::webcc::util::LogLevel::kDebug, __VA_ARGS__)
#define WEBCC_LOG_INFO(...) \
  ::webcc::util::Logf(::webcc::util::LogLevel::kInfo, __VA_ARGS__)
#define WEBCC_LOG_WARN(...) \
  ::webcc::util::Logf(::webcc::util::LogLevel::kWarn, __VA_ARGS__)
#define WEBCC_LOG_ERROR(...) \
  ::webcc::util::Logf(::webcc::util::LogLevel::kError, __VA_ARGS__)
