#include "util/format.h"

#include <cmath>
#include <cstdio>

namespace webcc::util {

std::string HumanBytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g%s", value, kUnits[unit]);
  }
  return buf;
}

std::string HumanDuration(Time t) {
  if (t < 0) return "-" + HumanDuration(-t);
  if (t < kSecond) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3gms", ToMillis(t));
    return buf;
  }
  std::string out;
  const auto emit = [&out](Time value, const char* suffix) {
    if (value > 0 || (!out.empty() && suffix[0] == '\0')) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld%s",
                    static_cast<long long>(value), suffix);
      out += buf;
    }
  };
  emit(t / kDay, "d");
  emit((t % kDay) / kHour, "h");
  emit((t % kHour) / kMinute, "m");
  emit((t % kMinute) / kSecond, "s");
  if (out.empty()) out = "0s";
  return out;
}

std::string Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string WithCommas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first_group) % 3 == 0 && i >= first_group) out += ',';
    out += digits[i];
  }
  return negative ? "-" + out : out;
}

}  // namespace webcc::util
