#include "replay/metrics.h"

#include <cstdio>

#include "util/format.h"

namespace webcc::replay {

std::string ReplayMetrics::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu hits=%llu (local=%llu validated=%llu) msgs=%llu "
      "bytes=%s lat(avg/min/max ms)=%.1f/%.1f/%.1f cpu=%.1f%% stale=%llu "
      "violations=%llu",
      static_cast<unsigned long long>(requests_issued),
      static_cast<unsigned long long>(cache_hits()),
      static_cast<unsigned long long>(local_hits),
      static_cast<unsigned long long>(validated_hits),
      static_cast<unsigned long long>(total_messages()),
      util::HumanBytes(message_bytes).c_str(), latency_ms.mean(),
      latency_ms.min(), latency_ms.max(), server_cpu_utilization * 100.0,
      static_cast<unsigned long long>(stale_serves),
      static_cast<unsigned long long>(strong_violations));
  return buf;
}

bool SameSimulation(const ReplayMetrics& a, const ReplayMetrics& b) {
  return a.get_requests == b.get_requests &&
         a.ims_requests == b.ims_requests && a.replies_200 == b.replies_200 &&
         a.replies_304 == b.replies_304 &&
         a.invalidations_sent == b.invalidations_sent &&
         a.invsrv_sent == b.invsrv_sent &&
         a.multicast_sends == b.multicast_sends &&
         a.message_bytes == b.message_bytes && a.local_hits == b.local_hits &&
         a.validated_hits == b.validated_hits &&
         a.latency_ms.SameSamples(b.latency_ms) &&
         a.server_cpu_utilization == b.server_cpu_utilization &&
         a.disk_reads_per_second == b.disk_reads_per_second &&
         a.disk_writes_per_second == b.disk_writes_per_second &&
         a.wall_duration == b.wall_duration &&
         a.stale_serves == b.stale_serves &&
         a.stale_while_invalidation_in_flight ==
             b.stale_while_invalidation_in_flight &&
         a.strong_violations == b.strong_violations &&
         a.sitelist_storage_bytes == b.sitelist_storage_bytes &&
         a.sitelist_entries == b.sitelist_entries &&
         a.sitelist_max_len_end == b.sitelist_max_len_end &&
         a.sitelist_avg_len_at_mod == b.sitelist_avg_len_at_mod &&
         a.sitelist_max_len_at_mod == b.sitelist_max_len_at_mod &&
         a.invalidation_time_ms.SameSamples(b.invalidation_time_ms) &&
         a.parent_hits == b.parent_hits &&
         a.parent_fetches == b.parent_fetches &&
         a.hierarchy_forwards == b.hierarchy_forwards &&
         a.pcv_items_piggybacked == b.pcv_items_piggybacked &&
         a.pcv_invalidated == b.pcv_invalidated &&
         a.psi_notices == b.psi_notices &&
         a.psi_entries_erased == b.psi_entries_erased &&
         a.lease_renewal_ims == b.lease_renewal_ims &&
         a.requests_issued == b.requests_issued &&
         a.requests_skipped == b.requests_skipped &&
         a.request_timeouts == b.request_timeouts &&
         a.modifications_applied == b.modifications_applied &&
         a.invalidations_delivered == b.invalidations_delivered &&
         a.invalidations_refused == b.invalidations_refused &&
         a.proxy_evictions == b.proxy_evictions &&
         a.proxy_expired_evictions == b.proxy_expired_evictions &&
         a.sim_events_executed == b.sim_events_executed &&
         a.sim_peak_queue_depth == b.sim_peak_queue_depth;
}

}  // namespace webcc::replay
