// Model-based property test: ProxyCache against a deliberately simple
// reference implementation.
//
// The production cache combines per-tier LRU lists, a hash index, a URL
// index, a lazy-deletion TTL heap and a pluggable eviction policy (with its
// own credit heap for GreedyDual-Size); the reference below is a pair of
// plain vectors with O(n) everything. Randomized operation sequences must
// keep the two in lockstep — membership, per-tier byte accounting, LRU /
// expired-first / GDS victims, demotions, promotions and tier-2 cleanup
// included. The GDS credit arithmetic is replicated operation-for-operation
// (same fixed-order double sums), so even its victims are bit-exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "http/proxy_cache.h"
#include "util/rng.h"

namespace webcc::http {
namespace {

// The reference: exact semantics, no cleverness.
class ReferenceCache {
 public:
  ReferenceCache(std::uint64_t capacity, ReplacementPolicy policy,
                 TierConfig tier = TierConfig{})
      : capacity_(capacity), policy_(policy), tier_(tier) {}

  struct Entry {
    std::string key;
    std::string url;
    std::uint64_t size = 0;
    Time ttl_expires = kNeverExpires;
    std::uint64_t stamp = 0;  // insertion order, for expiry tie-breaks
    std::uint32_t hits = 0;   // tier-2 promotion counter
    // GDS credit (meaningful only while the entry is in tier 1).
    double h = 0.0;
    std::uint64_t order = 0;
  };

  struct Stats {
    std::uint64_t evictions = 0;
    std::uint64_t expired_evictions = 0;
    std::uint64_t oversize_rejections = 0;
    std::uint64_t tier2_promotions = 0;
    std::uint64_t tier2_demotions = 0;
    std::uint64_t tier2_evictions = 0;
    std::uint64_t tier2_expired_cleaned = 0;
  };

  const Entry* Lookup(const std::string& key, Time now) {
    for (std::size_t i = 0; i < tier1_.size(); ++i) {
      if (tier1_[i].key != key) continue;
      MoveToFront(tier1_, i);
      if (policy_ == ReplacementPolicy::kGds) GdsCredit(tier1_.front());
      return &tier1_.front();
    }
    for (std::size_t i = 0; i < tier2_.size(); ++i) {
      if (tier2_[i].key != key) continue;
      ++tier2_[i].hits;
      if (tier2_[i].hits >= tier_.promotion_hits &&
          tier2_[i].size <= capacity_) {
        return Promote(i, now);
      }
      MoveToFront(tier2_, i);
      return &tier2_.front();
    }
    return nullptr;
  }

  bool Contains(const std::string& key) const {
    const auto match = [&key](const Entry& e) { return e.key == key; };
    return std::any_of(tier1_.begin(), tier1_.end(), match) ||
           std::any_of(tier2_.begin(), tier2_.end(), match);
  }

  void Insert(Entry entry, Time now) {
    Erase(entry.key);
    if (tier_.enabled()) Tier2TtlCleanup(now);
    if (entry.size > capacity_) {
      if (tier_.enabled() && entry.size <= tier_.tier2_capacity_bytes) {
        InsertIntoTier2(std::move(entry));
        return;
      }
      ++stats_.oversize_rejections;
      return;
    }
    while (bytes1_ + entry.size > capacity_) DisplaceOne(now);
    entry.stamp = next_stamp_++;
    bytes1_ += entry.size;
    tier1_.insert(tier1_.begin(), std::move(entry));
    if (policy_ == ReplacementPolicy::kGds) GdsCredit(tier1_.front());
    if (tier_.enabled()) {
      // Same expression as ProxyCache::DemotionWatermark, double for double.
      const auto watermark = static_cast<std::uint64_t>(
          tier_.demotion_pressure * static_cast<double>(capacity_));
      while (bytes1_ > watermark && !tier1_.empty()) DisplaceOne(now);
    }
  }

  bool Erase(const std::string& key) {
    return EraseIf([&key](const Entry& e) { return e.key == key; }) > 0;
  }

  std::size_t EraseByUrl(const std::string& url) {
    return EraseIf([&url](const Entry& e) { return e.url == url; });
  }

  std::uint64_t bytes() const { return bytes1_ + bytes2_; }
  std::uint64_t tier1_bytes() const { return bytes1_; }
  std::uint64_t tier2_bytes() const { return bytes2_; }
  std::size_t size() const { return tier1_.size() + tier2_.size(); }
  std::size_t tier2_size() const { return tier2_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  static void MoveToFront(std::vector<Entry>& entries, std::size_t i) {
    Entry entry = std::move(entries[i]);
    entries.erase(entries.begin() + static_cast<long>(i));
    entries.insert(entries.begin(), std::move(entry));
  }

  void GdsCredit(Entry& entry) {
    entry.h = gds_inflation_ +
              1.0 / static_cast<double>(std::max<std::uint64_t>(entry.size, 1));
    entry.order = next_order_++;
  }

  template <typename Pred>
  std::size_t EraseIf(Pred pred) {
    std::size_t erased = 0;
    for (std::vector<Entry>* tier : {&tier1_, &tier2_}) {
      for (std::size_t i = tier->size(); i > 0; --i) {
        const Entry& entry = (*tier)[i - 1];
        if (!pred(entry)) continue;
        (tier == &tier1_ ? bytes1_ : bytes2_) -= entry.size;
        tier->erase(tier->begin() + static_cast<long>(i - 1));
        ++erased;
      }
    }
    return erased;
  }

  // Victim choice, mirroring each policy's PickVictim. Returns the tier-1
  // index plus whether the expired-first rule (rather than plain recency)
  // chose it.
  struct Victim {
    std::size_t index = 0;
    bool expired_rule = false;
  };

  Victim PickVictim(Time now) {
    if (policy_ == ReplacementPolicy::kExpiredFirstLru) {
      // The production TTL heap is shared across tiers and pops by
      // (expiry, stamp); if the globally-earliest expired record belongs
      // to a tier-2 entry the policy falls back to the LRU tail.
      bool found = false;
      bool in_tier1 = false;
      std::size_t index = 0;
      Time earliest = kNeverExpires;
      std::uint64_t earliest_stamp = 0;
      for (const std::vector<Entry>* tier : {&tier1_, &tier2_}) {
        for (std::size_t i = 0; i < tier->size(); ++i) {
          const Entry& entry = (*tier)[i];
          if (entry.ttl_expires > now) continue;
          if (!found || entry.ttl_expires < earliest ||
              (entry.ttl_expires == earliest &&
               entry.stamp < earliest_stamp)) {
            found = true;
            in_tier1 = tier == &tier1_;
            index = i;
            earliest = entry.ttl_expires;
            earliest_stamp = entry.stamp;
          }
        }
      }
      if (found && in_tier1) return {index, true};
      return {tier1_.size() - 1, false};
    }
    if (policy_ == ReplacementPolicy::kGds) {
      std::size_t index = 0;
      for (std::size_t i = 1; i < tier1_.size(); ++i) {
        const Entry& best = tier1_[index];
        const Entry& candidate = tier1_[i];
        if (candidate.h < best.h ||
            (candidate.h == best.h && candidate.order < best.order)) {
          index = i;
        }
      }
      gds_inflation_ = tier1_[index].h;
      return {index, false};
    }
    return {tier1_.size() - 1, false};  // plain LRU
  }

  void DisplaceOne(Time now) {
    ASSERT_FALSE(tier1_.empty());
    const Victim victim = PickVictim(now);
    Entry entry = std::move(tier1_[victim.index]);
    tier1_.erase(tier1_.begin() + static_cast<long>(victim.index));
    bytes1_ -= entry.size;
    if (tier_.enabled() && !victim.expired_rule &&
        entry.size <= tier_.tier2_capacity_bytes) {
      entry.hits = 0;
      bytes2_ += entry.size;
      tier2_.insert(tier2_.begin(), std::move(entry));
      ++stats_.tier2_demotions;
      while (bytes2_ > tier_.tier2_capacity_bytes) EvictTier2Tail();
      return;
    }
    ++stats_.evictions;
    if (victim.expired_rule) ++stats_.expired_evictions;
  }

  void EvictTier2Tail() {
    ASSERT_FALSE(tier2_.empty());
    bytes2_ -= tier2_.back().size;
    tier2_.pop_back();
    ++stats_.evictions;
    ++stats_.tier2_evictions;
  }

  void InsertIntoTier2(Entry entry) {
    entry.stamp = next_stamp_++;
    entry.hits = 0;
    while (bytes2_ + entry.size > tier_.tier2_capacity_bytes) {
      EvictTier2Tail();
    }
    bytes2_ += entry.size;
    tier2_.insert(tier2_.begin(), std::move(entry));
  }

  const Entry* Promote(std::size_t i, Time now) {
    Entry entry = std::move(tier2_[i]);
    tier2_.erase(tier2_.begin() + static_cast<long>(i));
    bytes2_ -= entry.size;
    entry.hits = 0;
    bytes1_ += entry.size;
    tier1_.insert(tier1_.begin(), std::move(entry));
    if (policy_ == ReplacementPolicy::kGds) GdsCredit(tier1_.front());
    ++stats_.tier2_promotions;
    while (bytes1_ > capacity_ && tier1_.size() > 1) DisplaceOne(now);
    return &tier1_.front();
  }

  void Tier2TtlCleanup(Time now) {
    // Production scans up to ttl_cleanup_per_tick entries from the cold end
    // and reclaims the expired ones among them.
    std::size_t scanned = 0;
    for (std::size_t i = tier2_.size();
         i > 0 && scanned < tier_.ttl_cleanup_per_tick; --i, ++scanned) {
      if (tier2_[i - 1].ttl_expires > now) continue;
      bytes2_ -= tier2_[i - 1].size;
      tier2_.erase(tier2_.begin() + static_cast<long>(i - 1));
      ++stats_.tier2_expired_cleaned;
    }
  }

  std::uint64_t capacity_;
  ReplacementPolicy policy_;
  TierConfig tier_;
  std::uint64_t bytes1_ = 0;
  std::uint64_t bytes2_ = 0;
  std::uint64_t next_stamp_ = 1;
  double gds_inflation_ = 0.0;
  std::uint64_t next_order_ = 0;
  Stats stats_;
  std::vector<Entry> tier1_;
  std::vector<Entry> tier2_;
};

CacheEntry MakeEntry(int doc, int owner, std::uint64_t size, Time ttl) {
  CacheEntry entry;
  entry.url = "/d" + std::to_string(doc);
  entry.owner = "c" + std::to_string(owner);
  entry.key = entry.url + "@" + entry.owner;
  entry.size_bytes = size;
  entry.version = 1;
  entry.ttl_expires = ttl;
  return entry;
}

struct ModelParams {
  ReplacementPolicy policy;
  bool tiered;
  std::uint64_t seed;
};

class CacheModelTest : public ::testing::TestWithParam<ModelParams> {};

TEST_P(CacheModelTest, RandomOperationsStayInLockstep) {
  const ModelParams params = GetParam();
  constexpr std::uint64_t kCapacity = 2000;
  TierConfig tier;
  if (params.tiered) {
    tier.tier2_capacity_bytes = 3000;
    tier.promotion_hits = 2;
    tier.demotion_pressure = 0.7;
    tier.ttl_cleanup_per_tick = 2;  // small: exercises partial sweeps
  }
  ProxyCache cache(kCapacity, params.policy, tier);
  ReferenceCache reference(kCapacity, params.policy, tier);
  util::Rng rng(params.seed);

  Time now = 0;
  for (int step = 0; step < 6000; ++step) {
    now += static_cast<Time>(rng.NextBelow(50));
    const int doc = static_cast<int>(rng.NextBelow(12));
    const int owner = static_cast<int>(rng.NextBelow(3));
    const std::string key =
        "/d" + std::to_string(doc) + "@c" + std::to_string(owner);

    switch (rng.NextBelow(6)) {
      case 0:
      case 1: {  // insert
        // Distinct sizes/TTLs exercise both eviction paths; TTLs near `now`
        // flip between fresh and expired as time advances. The occasional
        // tier-1-oversize object lands in tier 2 (or is rejected untiered).
        const std::uint64_t size = rng.NextBool(0.05)
                                       ? 2200
                                       : 100 + rng.NextBelow(400);
        const Time ttl = rng.NextBool(0.3)
                             ? kNeverExpires
                             : now + static_cast<Time>(rng.NextBelow(120)) -
                                   40;
        cache.Insert(MakeEntry(doc, owner, size, ttl), now);
        ReferenceCache::Entry entry;
        entry.key = key;
        entry.url = "/d" + std::to_string(doc);
        entry.size = size;
        entry.ttl_expires = ttl;
        reference.Insert(entry, now);
        break;
      }
      case 2:
      case 3: {  // lookup (promotes in both; the extra weight vs the old
                 // sweep drives tier-2 hit counters toward promotion)
        CacheEntry* got = cache.Lookup(key, now);
        const auto* expected = reference.Lookup(key, now);
        ASSERT_EQ(got != nullptr, expected != nullptr) << "step " << step;
        if (got != nullptr) {
          EXPECT_EQ(got->size_bytes, expected->size);
          EXPECT_EQ(got->ttl_expires, expected->ttl_expires);
        }
        break;
      }
      case 4: {  // erase
        EXPECT_EQ(cache.Erase(key), reference.Erase(key)) << "step " << step;
        break;
      }
      case 5: {  // erase by url
        const std::string url = "/d" + std::to_string(doc);
        EXPECT_EQ(cache.EraseByUrl(url), reference.EraseByUrl(url))
            << "step " << step;
        break;
      }
    }

    ASSERT_EQ(cache.bytes_used(), reference.bytes())
        << "step " << step << " at now=" << now;
    ASSERT_EQ(cache.tier1_bytes_used(), reference.tier1_bytes())
        << "step " << step;
    ASSERT_EQ(cache.tier2_bytes_used(), reference.tier2_bytes())
        << "step " << step;
    ASSERT_EQ(cache.entry_count(), reference.size()) << "step " << step;
    ASSERT_EQ(cache.tier2_entry_count(), reference.tier2_size())
        << "step " << step;
  }

  // The whole decision history must match, not just the final occupancy.
  const ProxyCacheStats& got = cache.stats();
  const ReferenceCache::Stats& want = reference.stats();
  EXPECT_EQ(got.evictions, want.evictions);
  EXPECT_EQ(got.expired_evictions, want.expired_evictions);
  EXPECT_EQ(got.oversize_rejections, want.oversize_rejections);
  EXPECT_EQ(got.tier2_promotions, want.tier2_promotions);
  EXPECT_EQ(got.tier2_demotions, want.tier2_demotions);
  EXPECT_EQ(got.tier2_evictions, want.tier2_evictions);
  EXPECT_EQ(got.tier2_expired_cleaned, want.tier2_expired_cleaned);

  // Final membership sweep.
  for (int doc = 0; doc < 12; ++doc) {
    for (int owner = 0; owner < 3; ++owner) {
      const std::string key =
          "/d" + std::to_string(doc) + "@c" + std::to_string(owner);
      EXPECT_EQ(cache.Peek(key) != nullptr, reference.Contains(key)) << key;
    }
  }
}

std::vector<ModelParams> Sweep() {
  std::vector<ModelParams> params;
  std::uint64_t seed = 1;
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kExpiredFirstLru,
        ReplacementPolicy::kGds}) {
    for (const bool tiered : {false, true}) {
      for (int i = 0; i < 3; ++i) {
        params.push_back(ModelParams{policy, tiered, seed++});
      }
    }
  }
  return params;
}

std::string SweepName(const ::testing::TestParamInfo<ModelParams>& info) {
  std::string name;
  switch (info.param.policy) {
    case ReplacementPolicy::kLru:
      name = "Lru";
      break;
    case ReplacementPolicy::kExpiredFirstLru:
      name = "ExpiredFirst";
      break;
    case ReplacementPolicy::kGds:
      name = "Gds";
      break;
  }
  name += info.param.tiered ? "Tiered" : "Flat";
  return name + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheModelTest,
                         ::testing::ValuesIn(Sweep()), SweepName);

}  // namespace
}  // namespace webcc::http
