// Delivery-state machine for one write's invalidation fan-out.
//
// The paper's write-completion rule (Sections 4 and 6): a write is complete
// only when every site that might hold the old copy has either acknowledged
// its INVALIDATE or stopped mattering — its lease expired (Section 6's
// bound on how long a partition can block a write) or it is known dead
// (connection refused / retry budget exhausted; safe because a recovering
// proxy re-enters with every entry marked unverified).
//
// WriteDelivery tracks those targets for one modification. It is pure
// bookkeeping — no I/O, no clocks of its own — so the replay engine and the
// live stack drive the identical machine from their own event loops, and
// the fault harness can assert on it directly. Targets are kept in a sorted
// map so iteration order (and thus trace output) is deterministic.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "net/message.h"
#include "util/time.h"

namespace webcc::core {

class WriteDelivery {
 public:
  enum class Completion {
    kPending,        // targets still outstanding
    kAllAcked,       // every target acknowledged
    kLeasesExpired,  // >=1 straggler resolved by lease expiry or death
    kNoTargets,      // nobody cached the document
  };

  WriteDelivery() = default;
  explicit WriteDelivery(std::string url) : url_(std::move(url)) {}

  const std::string& url() const { return url_; }
  void set_url(std::string url) { url_ = std::move(url); }

  // Registers one site the INVALIDATE must reach. `lease_until` is the
  // expiry the accelerator granted that site (net::kNoLease = the write
  // waits for this ack forever, the leaseless Section 4 behaviour).
  // Re-adding an existing unresolved site keeps the later expiry.
  void AddTarget(std::string_view site, Time lease_until);

  // The site acknowledged its invalidation. Idempotent; unknown sites are
  // ignored (a duplicated datagram may ack twice). Returns true when this
  // call resolved the whole delivery.
  bool Ack(std::string_view site);

  // The site will never acknowledge (connection refused, retry budget
  // exhausted). Consistency is preserved by the proxy-recovery rule, so the
  // write need not block on it. Returns true when this resolved delivery.
  bool MarkDead(std::string_view site);

  // Resolves every target whose lease has lapsed at `now` (half-open: a
  // lease is active while now < lease_until). Returns true when this call
  // resolved the whole delivery — the Section 6 guarantee that a write
  // blocks at most one lease duration.
  bool ExpireLeases(Time now);

  bool complete() const { return outstanding_ == 0; }
  int outstanding() const { return outstanding_; }
  int total_targets() const { return static_cast<int>(targets_.size()); }

  // Meaningful once complete(); kPending before that.
  Completion completion() const;

  // Earliest lease expiry among unresolved targets; net::kNoLease when none
  // expires. The engine uses it to know a sweep cannot matter yet.
  Time NextExpiry() const;

 private:
  struct Target {
    Time lease_until = net::kNoLease;
    bool resolved = false;
  };

  bool Resolve(std::string_view site, bool by_expiry);

  std::string url_;
  std::map<std::string, Target, std::less<>> targets_;
  int outstanding_ = 0;
  bool any_expired_ = false;
};

}  // namespace webcc::core
