// Trace summary statistics in the shape of the paper's Table 2.
#pragma once

#include <cstdint>

#include "trace/record.h"

namespace webcc::trace {

struct TraceSummary {
  Time duration = 0;
  std::uint64_t total_requests = 0;
  std::uint64_t num_files = 0;          // documents actually requested
  double avg_file_size_bytes = 0.0;     // over requested documents
  // "File popularity": number of distinct client sites that requested the
  // same document — the paper reports the maximum and (in parentheses) the
  // average over requested documents.
  std::uint64_t max_popularity = 0;
  double avg_popularity = 0.0;
  // Extra derived statistics (not in Table 2 but useful for calibration):
  // fraction of requests that repeat an earlier (client, document) pair,
  // i.e. the infinite-cache per-client hit ratio.
  double repeat_request_fraction = 0.0;
};

TraceSummary Summarize(const Trace& trace);

// Implements Trace::Validate (kept here with the other whole-trace scans).
std::string ValidateTrace(const Trace& trace);

}  // namespace webcc::trace
