// Move-only callable with inline storage for simulator events.
//
// The common event — a lambda capturing `this` plus a few scalars — fits in
// the event record itself, so scheduling it allocates nothing. libstdc++'s
// std::function only inlines captures up to two words, which made nearly
// every scheduled event a heap allocation; profiling the replay engine put
// that churn at the top of the hot loop. Captures larger than kInlineBytes
// (replies and requests carrying strings) fall back to a single heap cell,
// exactly as std::function would.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace webcc::sim {

class Task {
 public:
  // this + six words: covers every hot-path capture in the replay engine.
  static constexpr std::size_t kInlineBytes = 56;

  Task() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  Task(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  Task(Task&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-constructs dst from src, then destroys src (heap mode: steals the
    // pointer). noexcept so queue reheaps never throw mid-move.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* self) { (*static_cast<Fn*>(self))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* self) { static_cast<Fn*>(self)->~Fn(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(void* self) { (**static_cast<Fn**>(self))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
    }
    static void Destroy(void* self) { delete *static_cast<Fn**>(self); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace webcc::sim
