#include "obs/trace_reader.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <unordered_set>
#include <vector>

namespace webcc::obs {
namespace {

// Pulls the raw value text of `"key":` out of one JSONL line. Returns an
// empty view when the key is absent. Values are either a JSON string (the
// view excludes the quotes, escapes left as-is) or a bare number.
std::string_view FindField(std::string_view line, std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  std::size_t start = pos + needle.size();
  if (start >= line.size()) return {};
  if (line[start] == '"') {
    ++start;
    std::size_t end = start;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\' && end + 1 < line.size()) ++end;
      ++end;
    }
    return line.substr(start, end - start);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

bool ParseInt64(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

}  // namespace

TraceSummary SummarizeTrace(std::istream& in) {
  TraceSummary summary;
  // Ids interned since the last run_begin; events must not reference ids
  // outside this scope (the writer restarts interning per run).
  std::unordered_set<std::int64_t> known_ids;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string_view sv = line;
    const std::string_view event_name = FindField(sv, "e");
    if (event_name.empty()) {
      ++summary.malformed_lines;
      continue;
    }
    if (event_name == "intern") {
      std::int64_t id = 0;
      if (!ParseInt64(FindField(sv, "id"), id)) {
        ++summary.malformed_lines;
        continue;
      }
      known_ids.insert(id);
      ++summary.intern_lines;
      continue;
    }
    EventType type;
    if (!ParseEventTypeName(event_name, type)) {
      ++summary.unknown_events;
      continue;
    }
    std::int64_t at = 0;
    if (!ParseInt64(FindField(sv, "t"), at)) {
      ++summary.malformed_lines;
      continue;
    }
    if (type == EventType::kRunBegin) {
      ++summary.runs;
      known_ids.clear();
    }
    for (const std::string_view key : {"u", "s"}) {
      const std::string_view ref = FindField(sv, key);
      std::int64_t id = 0;
      if (!ref.empty() && ParseInt64(ref, id) && !known_ids.count(id)) {
        ++summary.undefined_ids;
      }
    }
    ++summary.total_events;
    ++summary.by_type[static_cast<std::size_t>(type)];
    if (summary.first_at < 0 || at < summary.first_at) summary.first_at = at;
    if (at > summary.last_at) summary.last_at = at;
  }
  return summary;
}

void WriteTraceSummary(std::ostream& out, const TraceSummary& summary) {
  out << "events:    " << summary.total_events << "\n"
      << "runs:      " << summary.runs << "\n"
      << "interns:   " << summary.intern_lines << "\n";
  if (summary.first_at >= 0) {
    out << "clock:     [" << summary.first_at << ", " << summary.last_at
        << "] us (span " << (summary.last_at - summary.first_at) << ")\n";
  }
  if (summary.malformed_lines > 0) {
    out << "malformed: " << summary.malformed_lines << "\n";
  }
  if (summary.unknown_events > 0) {
    out << "unknown:   " << summary.unknown_events << "\n";
  }
  if (summary.undefined_ids > 0) {
    out << "undefined-ids: " << summary.undefined_ids << "\n";
  }

  struct Row {
    std::uint64_t count;
    std::string_view name;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < summary.by_type.size(); ++i) {
    if (summary.by_type[i] == 0) continue;
    rows.push_back(
        {summary.by_type[i], EventTypeName(static_cast<EventType>(i))});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.name < b.name;
  });
  if (!rows.empty()) out << "by type:\n";
  for (const Row& row : rows) {
    out << "  " << row.name;
    for (std::size_t pad = row.name.size(); pad < 22; ++pad) out << ' ';
    out << row.count << "\n";
  }
}

std::uint64_t DigestJsonl(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

}  // namespace webcc::obs
