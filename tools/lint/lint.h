// webcc_lint: project-specific static checks for webcc invariants.
//
// v2 is a real (if small) analyzer: a C++ tokenizer (tokenizer.h) feeds a
// lightweight declaration/scope parser (scopes.h), and the rules run as
// passes over the resulting model (passes/). No LLVM dependency — the
// point is that the semantic checks run on every toolchain in CI,
// including the GCC leg that -Wthread-safety cannot cover.
//
// Token-level rules (same ids and pragmas as the v1 line scanner):
//
//   determinism-clock       no rand()/time()/std::random_device/wall-clock
//                           reads in deterministic replay code — stochastic
//                           behavior must come from fault::Random / seeded
//                           util::Rng, and time from the simulated clock.
//                           (src/live, src/cli and src/util are exempt:
//                           the live stack runs on real wall clocks.)
//   unordered-iter-in-dump  no iteration over unordered containers inside
//                           Dump/Snapshot/Serialize/Digest/Export/ToJson/
//                           WriteJson functions — output paths must be
//                           byte-stable, so they iterate sorted containers
//                           or sort before writing.
//   raw-mutex               no raw <mutex>/<condition_variable> primitives
//                           outside util/thread_annotations.h — unannotated
//                           locks are invisible to -Wthread-safety, which
//                           silently exempts whatever they guard.
//   enum-switch-default     no `default:` in a switch over a protocol/lease
//                           enum — spell every enumerator so -Wswitch turns
//                           a forgotten case into a compile warning.
//   naked-send              no direct ::send/::recv/::write/::read syscalls
//                           outside live/socket.cc — live I/O must flow
//                           through the classified IoError path (short
//                           writes, EAGAIN resume, peer-reset vs timeout).
//   scan-prune              no iteration-erase prune loops over lease state
//                           outside core/timer_wheel.h and core/site_list.h
//                           — expiry must be indexed through the timer
//                           wheel so pruning stays O(expired).
//   naked-evict             no hand-rolled byte-budget eviction outside
//                           src/http/eviction/ and the proxy cache — victim
//                           choice belongs to the eviction kernel.
//
// Semantic passes (new in v2; findings carry witness chains):
//
//   guarded-by-unlocked     every access to a WEBCC_GUARDED_BY field must
//                           hold the declared mutex — via a util::MutexLock
//                           in an enclosing scope or a WEBCC_REQUIRES
//                           contract on the function. Whole-program: the
//                           header's annotations check the .cc's methods.
//   lock-order-cycle        the acquired-before graph over every nested
//                           MutexLock pair (plus WEBCC_ACQUIRED_BEFORE
//                           declarations) must be acyclic; a cycle is
//                           reported with the file:line of every edge.
//   determinism-taint       values produced by iterating an unordered
//                           container must not reach TraceSink::Emit or a
//                           live send without an intervening std::sort.
//   stale-suppression       (warning) every allow()/allow-file() pragma
//                           must still fire; dead pragmas rot into silent
//                           exemptions. --strict-suppressions makes these
//                           fatal.
//
// Suppressions: `// webcc-lint: allow(<rule>)` on the offending line or the
// line directly above silences one finding; `// webcc-lint:
// allow-file(<rule>)` anywhere in a file silences the rule file-wide. Every
// suppression should carry a justification after an em-dash or colon.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace webcc::lint {

// One step of the evidence for a semantic finding — e.g. each edge of a
// lock-order cycle, or the declaration a guarded-field access violates.
struct WitnessStep {
  std::string file;
  int line = 0;
  std::string note;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string pass = "scanner";     // which pass produced it
  std::string severity = "error";   // "error" or "warning"
  std::vector<WitnessStep> witness;
};

// All rule ids, in report order (stable; tests and CI grep these).
std::vector<std::string_view> RuleIds();

// Lints one file's contents. `path` decides rule scoping (e.g. src/live is
// exempt from determinism-clock) and is copied into findings verbatim.
// Whole-program passes see only this file's facts; use LintPaths to merge
// annotations across translation units.
std::vector<Finding> LintFile(std::string_view path, std::string_view text);

// Loads and lints every .cc/.h file under `paths` (files or directories,
// recursed in sorted order so output is deterministic), in two phases:
// annotation facts and the acquired-before graph are merged across all
// files before any file's passes run. I/O errors append to `errors`.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               std::vector<std::string>& errors);

// Renders findings, one per line (witness steps indented under human
// findings, nested as an array under json ones):
//   human:  <file>:<line>: [<rule>] <message>
//   json:   {"file":"...","line":N,"rule":"...","severity":"...",
//            "pass":"...","message":"...","witness":[...]}
// JSON strings are escaped (quotes, backslashes, control characters).
void WriteFindings(std::ostream& out, const std::vector<Finding>& findings,
                   bool json);

// Full CLI: returns the process exit code (0 = clean, 1 = findings,
// 2 = usage or I/O error). `argv` excludes the program name. Warnings
// (stale-suppression) print but exit 0 unless --strict-suppressions.
int RunLintMain(const std::vector<std::string>& argv, std::ostream& out,
                std::ostream& err);

}  // namespace webcc::lint
