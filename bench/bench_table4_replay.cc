// Regenerates Table 4: full trace replays of NASA (7-day mean file
// lifetime) and SDSC with 25-day and 2.5-day lifetimes.
#include <cstdio>

#include "bench_common.h"

int main() {
  std::printf("=== Table 4: replay results for NASA and SDSC ===\n\n");
  webcc::bench::RunAndPrintExperiments(webcc::replay::Table4Experiments());
  std::printf(
      "paper's reading: the two SDSC lifetimes sample the modification-rate\n"
      "axis — at 2.5 days the modifier touches ten times as many files, so\n"
      "invalidation traffic grows and adaptive TTL validates more, yet the\n"
      "ordering of the three approaches is unchanged.\n");
  return 0;
}
