// Clang Thread Safety Analysis annotations and an annotated mutex wrapper.
//
// Every piece of shared mutable state in webcc declares which lock guards it
// (`WEBCC_GUARDED_BY`), and every function that touches guarded state
// declares what it must hold (`WEBCC_REQUIRES`). Under Clang the `tsa`
// preset turns these into compile errors (`-Wthread-safety -Werror`): a
// site-list touched outside its lock, a double-acquire, or a forgotten
// release fails the build instead of becoming a TSan-race lottery ticket.
// Under other compilers every macro expands to nothing and the wrappers
// degrade to plain std primitives — zero cost, zero behavior change.
//
// webcc code must use these wrappers instead of raw <mutex> primitives
// (enforced by webcc_lint's `raw-mutex` rule): raw std::mutex is invisible
// to the analysis, so a single unannotated lock would silently exempt the
// state it guards from the whole scheme.
//
// The annotation set mirrors the Clang documentation's canonical macro
// names (GUARDED_BY, REQUIRES, ACQUIRE/RELEASE, ...) with a WEBCC_ prefix.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define WEBCC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define WEBCC_THREAD_ANNOTATION(x)  // no-op off-Clang
#endif

// A type that acts as a lock (our Mutex below).
#define WEBCC_CAPABILITY(x) WEBCC_THREAD_ANNOTATION(capability(x))
// An RAII type that acquires in its constructor, releases in its destructor.
#define WEBCC_SCOPED_CAPABILITY WEBCC_THREAD_ANNOTATION(scoped_lockable)

// Data members: which mutex guards this field / the data behind this pointer.
#define WEBCC_GUARDED_BY(x) WEBCC_THREAD_ANNOTATION(guarded_by(x))
#define WEBCC_PT_GUARDED_BY(x) WEBCC_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold / must not hold these capabilities.
#define WEBCC_REQUIRES(...) \
  WEBCC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define WEBCC_REQUIRES_SHARED(...) \
  WEBCC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define WEBCC_EXCLUDES(...) WEBCC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release capabilities themselves.
#define WEBCC_ACQUIRE(...) \
  WEBCC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define WEBCC_RELEASE(...) \
  WEBCC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define WEBCC_TRY_ACQUIRE(...) \
  WEBCC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Lock-ordering declarations and analysis escape hatches.
#define WEBCC_ACQUIRED_BEFORE(...) \
  WEBCC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define WEBCC_ACQUIRED_AFTER(...) \
  WEBCC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define WEBCC_ASSERT_CAPABILITY(x) \
  WEBCC_THREAD_ANNOTATION(assert_capability(x))
#define WEBCC_RETURN_CAPABILITY(x) WEBCC_THREAD_ANNOTATION(lock_returned(x))
#define WEBCC_NO_THREAD_SAFETY_ANALYSIS \
  WEBCC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace webcc::util {

class CondVar;

// std::mutex with a capability annotation, so `WEBCC_GUARDED_BY(mu_)`
// member declarations bind to it. Non-recursive, non-shared: webcc has no
// reader/writer locking (critical sections are short and metric reads are
// either atomics or take the same lock as writers).
class WEBCC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WEBCC_ACQUIRE() { mu_.lock(); }
  void Unlock() WEBCC_RELEASE() { mu_.unlock(); }
  bool TryLock() WEBCC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // webcc-lint: allow(raw-mutex) — the annotated wrapper itself
};

// RAII lock for Mutex; the only way webcc code takes a lock (the analysis
// sees scoped acquire/release pairs and flags any path that leaks one).
class WEBCC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WEBCC_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() WEBCC_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to the annotated Mutex. Wait() declares that the
// caller holds `mu` — the analysis then knows the predicate and any state
// read around the wait are lock-protected. The temporary unique_lock adopts
// the already-held mutex and releases ownership after the wait, so the
// capability bookkeeping (caller holds `mu` throughout, modulo the wait's
// internal unlock window) matches reality.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate predicate) WEBCC_REQUIRES(mu) {
    // webcc-lint: allow(raw-mutex) — adapter between Mutex and std::condition_variable
    std::unique_lock<std::mutex> adapted(mu.mu_, std::adopt_lock);
    cv_.wait(adapted, std::move(predicate));
    adapted.release();  // the caller's MutexLock still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // webcc-lint: allow(raw-mutex)
};

}  // namespace webcc::util
