// The eviction kernel: one strategy class per replacement policy, driving
// every victim choice the proxy cache makes.
//
// This repeats the refactor shape of core/consistency (PR 3): the cache
// owns all entry storage and indexes — the LRU list, the interned key/url
// maps, and the TTL expiry heap — and the policy is a pure strategy that is
// notified of entry lifecycle events (OnInsert/OnHit/OnErase) and asked to
// choose victims (PickVictim). The policy reads the cache's indexes through
// the narrow EvictionHost view instead of duplicating them, so the
// expired-first policy consults the *same* lazy-deletion TTL heap that
// PCV's TakeExpired consumes, exactly as the pre-refactor inlined code did.
//
// Decision table (see DESIGN.md §13 for the paper mapping):
//
//   policy           PickVictim chooses                 state kept
//   ---------------  --------------------------------   -----------------
//   lru              the LRU-list tail                  none (host order)
//   expired-first    earliest-expiring entry whose TTL  none (host heap)
//                    has lapsed, else the LRU tail
//   gds              smallest GreedyDual-Size credit    per-entry H values
//                    H = L + 1/size (inflation L)       + a lazy min-heap
//
// Policies never allocate entry storage and never see strings: entries are
// identified by their interned key id (core::InternId).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>

#include "core/intern.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace webcc::http {

// Sentinel expiry for "never expires" (strong-consistency entries).
// Defined here so the kernel does not depend on proxy_cache.h (which
// includes this header).
inline constexpr Time kNeverExpires = std::numeric_limits<Time>::max();

namespace eviction {

enum class EvictionPolicyKind { kLru, kExpiredFirstLru, kGds };

// Stable spellings for flags and metrics: "lru", "expired-first", "gds".
std::string_view ToString(EvictionPolicyKind kind);
// Parses a ToString spelling. Returns false (leaving `out` untouched) for
// anything else; callers list ValidEvictionPolicyNames() in their error.
bool ParseEvictionPolicyKind(std::string_view name, EvictionPolicyKind& out);
std::string_view ValidEvictionPolicyNames();

// The per-entry facts a policy may see. `stamp` is the cache's tie-break
// stamp (monotone insertion/update order, shared with the TTL heap), so
// every policy's tie-breaks agree with TtlHeapItem's ordering.
struct EntryView {
  core::InternId key = core::kNoInternId;
  std::uint64_t size_bytes = 0;
  Time ttl_expires = kNeverExpires;
  std::uint64_t stamp = 0;
};

struct Victim {
  core::InternId key = core::kNoInternId;
  // The expired-first rule chose it (kEviction trace detail 1).
  bool expired_rule = false;
};

struct EvictionPolicyStats {
  std::uint64_t picks = 0;          // victims chosen
  std::uint64_t expired_picks = 0;  // ... via the expired-first rule
};

class ExpiryHeap;

// The narrow view of the owning cache a policy may consult while picking a
// victim. Only tier-1 entries are visible: the second tier evicts by its
// own LRU order inside the cache.
class EvictionHost {
 public:
  virtual ~EvictionHost() = default;

  // Key of the least-recently-used tier-1 entry. Never called on an empty
  // tier.
  virtual core::InternId LruTailKey() const = 0;

  // The cache's lazy-deletion TTL expiry heap (shared with TakeExpired).
  virtual ExpiryHeap& TtlHeap() = 0;

  // True when (key, stamp) names the live heap record of a resident entry:
  // the entry exists, carries this stamp, and its record has not been
  // consumed by TakeExpired.
  virtual bool TtlRecordLive(core::InternId key,
                             std::uint64_t stamp) const = 0;

  // The policy is about to pop `key`'s live heap record (the expired-first
  // victim path); the cache clears its record-live flag so the entry's
  // later removal does not double-count the record as newly stale.
  virtual void NoteTtlRecordConsumed(core::InternId key) = 0;

  // True when `key` resides in tier 1 and may be returned as a victim. TTL
  // records cover both tiers (TakeExpired needs them), but only tier-1
  // entries are the policy's to evict; tier 2 reclaims its own expired
  // entries. Always true with tiering off.
  virtual bool InEvictableTier(core::InternId key) const = 0;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual EvictionPolicyKind kind() const = 0;

  // Entry lifecycle in tier 1, driven by the owning cache. OnInsert fires
  // after the entry is resident (and stamped); OnHit after an LRU
  // promotion; OnErase before removal — including demotion to tier 2,
  // which leaves the policy's view of tier 1.
  virtual void OnInsert(const EntryView& entry) = 0;
  virtual void OnHit(const EntryView& entry) = 0;
  virtual void OnErase(const EntryView& entry) = 0;

  // Chooses the next tier-1 victim. Only called with at least one resident
  // tier-1 entry; must return a live key.
  virtual Victim PickVictim(Time now, EvictionHost& host) = 0;

  const EvictionPolicyStats& stats() const { return stats_; }

  // Policy-specific gauges under `prefix` (e.g. GDS's inflation offset).
  // The base implementation exports the shared pick counters.
  virtual void ExportStats(obs::MetricsRegistry& registry,
                           std::string_view prefix) const;

 protected:
  EvictionPolicyStats stats_;
};

// Builds the strategy for `kind`.
std::unique_ptr<EvictionPolicy> MakeEvictionPolicy(EvictionPolicyKind kind);

}  // namespace eviction
}  // namespace webcc::http
