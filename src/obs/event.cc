#include "obs/event.h"

namespace webcc::obs {
namespace {

struct NameEntry {
  EventType type;
  std::string_view name;
};

// The wire vocabulary. Append-only: readers of old traces depend on it.
constexpr NameEntry kNames[] = {
    {EventType::kRunBegin, "run_begin"},
    {EventType::kRunEnd, "run_end"},
    {EventType::kGetSent, "get_sent"},
    {EventType::kImsSent, "ims_sent"},
    {EventType::kRequestServed, "request_served"},
    {EventType::kRequestTimeout, "request_timeout"},
    {EventType::kReply200, "reply_200"},
    {EventType::kReply304, "reply_304"},
    {EventType::kStaleHit, "stale_hit"},
    {EventType::kLeaseGrant, "lease_grant"},
    {EventType::kLeaseExpiry, "lease_expiry"},
    {EventType::kInvalidateGenerated, "invalidate_generated"},
    {EventType::kInvalidateDelivered, "invalidate_delivered"},
    {EventType::kInvalidateRefused, "invalidate_refused"},
    {EventType::kInvalidateGaveUp, "invalidate_gave_up"},
    {EventType::kInvalidateServer, "invalidate_server"},
    {EventType::kEviction, "eviction"},
    {EventType::kModification, "modification"},
    {EventType::kNotify, "notify"},
    {EventType::kPartition, "partition"},
    {EventType::kPartitionHeal, "partition_heal"},
    {EventType::kLinkDrop, "link_drop"},
    {EventType::kLinkDelay, "link_delay"},
    {EventType::kLinkDup, "link_dup"},
    {EventType::kNodeCrash, "node_crash"},
    {EventType::kNodeRestart, "node_restart"},
    {EventType::kWriteComplete, "write_complete"},
    {EventType::kJournalRebuild, "journal_rebuild"},
};

}  // namespace

std::string_view EventTypeName(EventType type) {
  for (const NameEntry& entry : kNames) {
    if (entry.type == type) return entry.name;
  }
  return "unknown";
}

bool ParseEventTypeName(std::string_view name, EventType& out) {
  for (const NameEntry& entry : kNames) {
    if (entry.name == name) {
      out = entry.type;
      return true;
    }
  }
  return false;
}

}  // namespace webcc::obs
