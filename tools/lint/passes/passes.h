// Internal interface between the webcc_lint driver and its analysis
// passes. Each pass consumes one file's ScopeModel (plus program-wide
// facts where the analysis is whole-program) and reports findings through
// the Reporter, which owns suppression handling and de-duplication.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "lint.h"
#include "scopes.h"

namespace webcc::lint {

class Reporter;

struct FileContext {
  std::string path;
  ScopeModel model;
  // Variables declared as std::unordered_map/unordered_set in this file
  // (members and locals) — shared by unordered-iter-in-dump and the
  // determinism-taint pass.
  std::set<std::string> unordered_names;
};

// Whole-program annotation facts, merged across every linted file before
// per-file passes run (a field declared GUARDED_BY in a header is checked
// in the .cc that defines the methods).
struct ProgramFacts {
  struct FieldFact {
    std::string guard;  // normalized mutex expression
    std::string file;   // declaration site (witness anchor)
    int line = 0;
    bool pointee_only = false;  // WEBCC_PT_GUARDED_BY
  };
  // class -> field -> fact
  std::map<std::string, std::map<std::string, FieldFact>> guarded;
  // "Class::Method" -> normalized lock expressions the caller must hold
  std::map<std::string, std::set<std::string>> requires_locks;
};

// The acquired-before graph: one edge per (outer, inner) nested
// acquisition or per WEBCC_ACQUIRED_BEFORE/_AFTER declaration.
struct LockEdge {
  std::string from;  // canonical lock names ("Class::mu_")
  std::string to;
  std::string file;  // where the inner acquisition (or declaration) is
  int line = 0;
  std::string note;  // human-readable witness step
};

struct LockOrderGraph {
  std::vector<LockEdge> edges;
};

// --- pass entry points -------------------------------------------------------

std::set<std::string> CollectUnorderedNames(const ScopeModel& model);

void CollectProgramFacts(const FileContext& file, ProgramFacts* facts);

// The seven v1 rules (determinism-clock, unordered-iter-in-dump,
// raw-mutex, enum-switch-default, naked-send, scan-prune, naked-evict),
// reimplemented on the token stream. Rule ids and suppression pragmas are
// unchanged from the line-scanner version.
void RunLegacyRules(const FileContext& file, Reporter& reporter);

// Intra-procedural lock-discipline dataflow: every access to a
// WEBCC_GUARDED_BY field inside its class's methods must be covered by a
// util::MutexLock on the declared mutex or a WEBCC_REQUIRES contract.
void RunLockDiscipline(const FileContext& file, const ProgramFacts& facts,
                       Reporter& reporter);

// Whole-program lock-order cycle detection over nested MutexLock scopes
// and declared ACQUIRED_BEFORE/_AFTER edges.
void CollectLockOrder(const FileContext& file, LockOrderGraph* graph);
void RunLockOrderCycles(const LockOrderGraph& graph, Reporter& reporter);

// Determinism taint: values produced by iterating unordered containers
// must not flow into trace emission or wire sends without a sort.
void RunDeterminismTaint(const FileContext& file, Reporter& reporter);

// --- path scoping -------------------------------------------------------------

// Whether `rule` applies to `path` at all (some rules exempt the files
// that own the sanctioned machinery). Used both to skip rules and to keep
// stale-suppression detection from flagging pragmas in exempt files.
bool RuleAppliesToPath(std::string_view rule, std::string_view path);

// --- the reporter --------------------------------------------------------------

class Reporter {
 public:
  explicit Reporter(std::vector<Finding>* findings) : findings_(findings) {}

  // Registers one file's suppression pragmas before its passes run.
  void AddLineAllow(const std::string& file, int line, const std::string& rule);
  void AddFileAllow(const std::string& file, int line, const std::string& rule);

  // Reports unless suppressed; duplicate (file, line, rule) drop via a
  // hashed seen-set (the v1 scanner rescanned the whole findings vector
  // per report — quadratic on noisy files).
  void Report(Finding finding);

  // Stale-suppression sweep: every pragma that never fired (and whose rule
  // actually applies to its file) becomes a `stale-suppression` warning.
  void FlagStaleSuppressions();

 private:
  struct Pragma {
    std::string rule;
    bool used = false;
    bool file_wide = false;
  };
  bool Suppress(const Finding& finding);

  std::vector<Finding>* findings_;
  std::unordered_set<std::string> seen_;  // "file\0line\0rule" keys
  // file -> pragma line -> pragmas on that line (file_wide entries apply
  // to the whole file but keep their line for stale reporting).
  // std::map keeps the stale-suppression sweep deterministic.
  std::map<std::string, std::map<int, std::vector<Pragma>>> pragmas_;
};

}  // namespace webcc::lint
