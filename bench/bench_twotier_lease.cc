// Regenerates the Section 6 numbers: the two-tier lease-augmented
// invalidation scheme on the 8-day SASK trace.
//
// The paper reports that two-tier leases shrink SASK's site lists from the
// simple scheme's tens of thousands of entries to 2,489, and the longest
// per-document list from 1,155 to 473 entries, at a cost of 2,489 extra
// If-Modified-Since requests — far fewer than polling-every-time generates.
#include <cstdio>

#include "bench_common.h"

using namespace webcc;

namespace {

replay::ReplayMetrics RunSask(core::LeaseConfig lease) {
  const replay::ExperimentSpec spec = replay::Table3Experiments()[1];  // SASK
  const trace::Trace& trace = bench::TraceFor(spec.trace);
  replay::ReplayConfig config =
      replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
  config.lease = lease;
  return replay::RunReplay(config);
}

}  // namespace

int main() {
  std::printf("=== Section 6: two-tier lease-augmented invalidation "
              "(SASK, 14-day lifetime) ===\n\n");

  core::LeaseConfig simple;  // kNone: remember every requester forever

  core::LeaseConfig two_tier;
  two_tier.mode = core::LeaseMode::kTwoTier;
  two_tier.duration = 8 * kDay;  // regular lease spans the trace
  two_tier.short_duration = 0;   // GETs earn nothing

  core::LeaseConfig three_day;
  three_day.mode = core::LeaseMode::kFixed;
  three_day.duration = 3 * kDay;  // the paper's example lease length

  const replay::ReplayMetrics simple_run = RunSask(simple);
  const replay::ReplayMetrics lease_run = RunSask(three_day);
  const replay::ReplayMetrics two_tier_run = RunSask(two_tier);
  const replay::ReplayMetrics polling = bench::RunCell(
      replay::Table3Experiments()[1], core::Protocol::kPollEveryTime);

  stats::Table table({"", "Simple invalidation", "3-day lease",
                      "Two-tier lease"});
  const replay::ReplayMetrics* runs[] = {&simple_run, &lease_run,
                                         &two_tier_run};
  const auto row = [&](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (const auto* run : runs) cells.push_back(get(*run));
    table.AddRow(std::move(cells));
  };

  row("Site-list entries (end)", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.sitelist_entries));
  });
  row("Site-list storage", [](const auto& m) {
    return util::HumanBytes(m.sitelist_storage_bytes);
  });
  row("Max site list (end)", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.sitelist_max_len_end));
  });
  row("Extra IMS (lease renewals)", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.ims_requests));
  });
  row("Invalidations sent", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.invalidations_sent));
  });
  row("Total messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("Strong violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "paper: two-tier leases cut SASK's site lists to 2,489 entries (max\n"
      "list 1,155 -> 473) for 2,489 extra If-Modified-Since requests.\n"
      "polling-every-time on the same replay sends %s IMS — the two-tier\n"
      "extra validations are a small fraction of that, as the paper argues.\n",
      util::WithCommas(static_cast<std::int64_t>(polling.ims_requests))
          .c_str());
  return 0;
}
