#include "replay/engine.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "core/lease.h"
#include "http/cache_key.h"
#include "obs/event.h"
#include "replay/engine_impl.h"
#include "synth/generate.h"
#include "util/distributions.h"
#include "util/log.h"
#include "util/rng.h"

namespace webcc::replay {
namespace detail {

using core::consistency::HitAction;

void Engine::Setup() {
  sink_ = config_.trace_sink;
  net_.set_trace_sink(sink_);
  accel_.set_trace_sink(sink_);  // propagates to every shard and its table

  // One dedicated sender (and, for batching, one outbox) per accelerator
  // shard. Serialized mode never touches them, keeping the paper's shared
  // server CPU — and its metrics — shard-count invariant.
  const std::uint32_t num_shards = accel_.num_shards();
  inval_senders_.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) {
    inval_senders_.push_back(std::make_unique<sim::FifoStation>(
        sim_, "invalidation-sender-" + std::to_string(i)));
  }
  outboxes_.resize(num_shards);
  drain_scheduled_.assign(num_shards, 0);

  // Document store with pre-trace ages so adaptive TTL sees a realistic age
  // distribution at t = 0 (files on a real server predate the log).
  util::Rng rng(config_.seed);
  for (const trace::DocumentInfo& doc : trace_.documents) {
    const Time initial_age =
        config_.fixed_initial_age >= 0
            ? config_.fixed_initial_age
            : static_cast<Time>(util::SampleExponential(
                  rng, static_cast<double>(config_.mean_lifetime)));
    docs_.Add(doc.path, doc.size_bytes, -initial_age);
  }
  origin_ = std::make_unique<http::OriginServer>(docs_);

  clients_.resize(config_.num_pseudo_clients);
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    PseudoClient& pc = clients_[i];
    pc.index = static_cast<int>(i);
    pc.node = static_cast<sim::NodeId>(i);
    pc.cache = std::make_unique<http::ProxyCache>(
        config_.proxy_cache_bytes, config_.eviction_policy,
        config_.proxy_tier);
    pc.cache->set_trace_sink(sink_);
  }
  psi_last_contact_.assign(config_.num_pseudo_clients, 0);
  for (std::size_t c = 0; c < trace_.clients.size(); ++c) {
    pseudo_of_client_[trace_.clients[c]] =
        static_cast<int>(c % config_.num_pseudo_clients);
  }
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    proxy_site_names_.push_back("proxy-" + std::to_string(i));
    pseudo_of_client_[proxy_site_names_.back()] = static_cast<int>(i);
  }
  // Size each pseudo-client's slice exactly (a counting pass is cheaper
  // than the doubling reallocations of tens of thousands of push_backs).
  std::vector<std::size_t> slice_sizes(config_.num_pseudo_clients, 0);
  for (const trace::TraceRecord& record : trace_.records) {
    ++slice_sizes[record.client % config_.num_pseudo_clients];
  }
  for (std::uint32_t i = 0; i < config_.num_pseudo_clients; ++i) {
    clients_[i].records.reserve(slice_sizes[i]);
  }
  for (const trace::TraceRecord& record : trace_.records) {
    clients_[record.client % config_.num_pseudo_clients].records.push_back(
        record);
  }
  // Pending events peak around a few per in-flight request (timeout guard,
  // network hop, completion) plus invalidation fan-out bursts.
  sim_.Reserve(static_cast<std::size_t>(config_.num_pseudo_clients) * 8 + 256);

  if (!config_.explicit_modifications.empty()) {
    modifications_ = config_.explicit_modifications;
    // Callers may build these by hand; the modifier and the PSI log both
    // require time order.
    std::stable_sort(modifications_.begin(), modifications_.end(),
                     [](const trace::ModEvent& a, const trace::ModEvent& b) {
                       return a.at < b.at;
                     });
  } else if (config_.suppress_generated_modifications) {
    modifications_.clear();
  } else {
    trace::ModifierConfig mod_config;
    mod_config.duration = trace_.duration;
    mod_config.num_documents =
        static_cast<std::uint32_t>(trace_.documents.size());
    mod_config.mean_lifetime = config_.mean_lifetime;
    mod_config.seed = config_.modifier_seed;
    modifications_ = trace::GenerateModifierSchedule(mod_config);
  }

  failures_ = config_.failures;
  if (config_.fault_plan != nullptr) {
    // Expand the declarative plan: crash and partition events become
    // FailureEvent pairs (onset + recovery) on the existing failure path;
    // link-fault windows go to the FaultClock below.
    fault::FaultPlan plan = *config_.fault_plan;
    fault::Canonicalize(plan);
    bool has_link_faults = false;
    for (const fault::FaultEvent& event : plan.events) {
      switch (event.kind) {
        case fault::FaultKind::kProxyCrash: {
          WEBCC_CHECK_MSG(
              event.target >= 0 &&
                  event.target < static_cast<int>(config_.num_pseudo_clients),
              "fault plan proxy_crash target out of range");
          failures_.push_back(
              {event.at, FailureKind::kProxyCrash, event.target});
          failures_.push_back({event.at + event.duration,
                               FailureKind::kProxyRecover, event.target});
          break;
        }
        case fault::FaultKind::kServerCrash:
          failures_.push_back({event.at, FailureKind::kServerCrash, 0});
          failures_.push_back(
              {event.at + event.duration, FailureKind::kServerRecover, 0});
          break;
        case fault::FaultKind::kPartition: {
          const int first = event.target < 0 ? 0 : event.target;
          const int last = event.target < 0
                               ? static_cast<int>(config_.num_pseudo_clients)
                               : event.target + 1;
          WEBCC_CHECK_MSG(
              last <= static_cast<int>(config_.num_pseudo_clients),
              "fault plan partition target out of range");
          for (int target = first; target < last; ++target) {
            failures_.push_back({event.at, FailureKind::kPartition, target});
            failures_.push_back(
                {event.at + event.duration, FailureKind::kHeal, target});
          }
          break;
        }
        case fault::FaultKind::kLinkFault:
          has_link_faults = true;
          break;
      }
    }
    if (has_link_faults) {
      fault_clock_ =
          std::make_unique<fault::FaultClock>(plan, config_.fault_seed);
      std::vector<sim::NodeId> client_nodes;
      client_nodes.reserve(clients_.size());
      for (const PseudoClient& pc : clients_) client_nodes.push_back(pc.node);
      fault_clock_->BindNodes(ServerNode(), std::move(client_nodes));
      net_.set_fault_injector(fault_clock_.get());
    }
  }
  std::stable_sort(failures_.begin(), failures_.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.trace_time < b.trace_time;
                   });
  // Write-ahead journaling has a per-request cost, so it is armed only when
  // a server crash is actually scheduled (and targeted recovery requested).
  if (config_.journaled_recovery && InvalidationMode() &&
      std::any_of(failures_.begin(), failures_.end(),
                  [](const FailureEvent& event) {
                    return event.kind == FailureKind::kServerCrash;
                  })) {
    accel_.EnableJournal(true);
  }

  num_intervals_ = static_cast<std::size_t>(
      (trace_.duration + config_.lockstep_interval - 1) /
      config_.lockstep_interval);
  if (num_intervals_ == 0) num_intervals_ = 1;

  if (config_.hierarchical) {
    WEBCC_CHECK_MSG(InvalidationMode(),
                    "hierarchical mode is defined for the invalidation "
                    "protocol only");
    parent_cache_ = std::make_unique<http::ProxyCache>(
        config_.proxy_cache_bytes * 4, config_.eviction_policy,
        config_.proxy_tier);
    parent_cache_->set_trace_sink(sink_);
    parent_table_ = std::make_unique<core::InvalidationTable>(
        core::LeaseConfig{});
    parent_table_->set_trace_sink(sink_);
    parent_cpu_ = std::make_unique<sim::FifoStation>(sim_, "parent-cpu");
  }
}

ReplayMetrics Engine::Run() {
  // host_seconds is a wall-clock throughput gauge, excluded from the
  // determinism digests by design.
  // webcc-lint: allow(determinism-clock)
  const auto host_start = std::chrono::steady_clock::now();
  if (sink_ != nullptr) {
    std::string label(core::ToString(config_.protocol));
    label += " clients=";
    label += std::to_string(config_.num_pseudo_clients);
    label += " records=";
    label += std::to_string(trace_.records.size());
    sink_->Emit({.type = obs::EventType::kRunBegin, .label = label});
  }
  StartInterval();
  // Drain in-flight work after the last interval, but don't chase retry
  // loops forever if a partition is never healed.
  constexpr Time kDrainGrace = 10 * kMinute;
  while (sim_.Step()) {
    if (wall_end_ != 0 && sim_.now() > wall_end_ + kDrainGrace) break;
  }
  metrics_.host_seconds =
      // webcc-lint: allow(determinism-clock) — same wall-clock gauge as above.
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();
  metrics_.sim_events_executed = sim_.executed();
  metrics_.sim_peak_queue_depth = sim_.peak_pending();
  metrics_.injected_drops = net_.injected_drops();
  metrics_.injected_dups = net_.injected_dups();
  metrics_.injected_delays = net_.injected_delays();

  metrics_.server_cpu_utilization =
      server_cpu_.utilization().BusyFraction(wall_end_);
  metrics_.disk_reads_per_second =
      server_disk_.utilization().ReadsPerSecond(wall_end_);
  metrics_.disk_writes_per_second =
      server_disk_.utilization().WritesPerSecond(wall_end_);
  metrics_.wall_duration = wall_end_;

  for (const std::unique_ptr<sim::FifoStation>& sender : inval_senders_) {
    const std::uint64_t busy =
        static_cast<std::uint64_t>(sender->utilization().busy_time());
    metrics_.inval_sender_busy_total_us += busy;
    metrics_.inval_sender_busy_max_us =
        std::max(metrics_.inval_sender_busy_max_us, busy);
  }

  metrics_.sitelist_storage_bytes = accel_.StorageBytes();
  metrics_.sitelist_entries = accel_.TotalEntries();
  metrics_.sitelist_max_len_end = accel_.MaxListLength();
  const core::AcceleratorStats accel_stats = accel_.AggregateStats();
  const auto& lengths = accel_stats.list_lengths_at_modification;
  if (!lengths.empty()) {
    std::uint64_t sum = 0;
    std::uint64_t longest = 0;
    for (std::size_t length : lengths) {
      sum += length;
      longest = std::max<std::uint64_t>(longest, length);
    }
    metrics_.sitelist_avg_len_at_mod =
        static_cast<double>(sum) / static_cast<double>(lengths.size());
    metrics_.sitelist_max_len_at_mod = longest;
  }
  for (const PseudoClient& pc : clients_) {
    metrics_.proxy_evictions += pc.cache->stats().evictions;
    metrics_.proxy_expired_evictions += pc.cache->stats().expired_evictions;
    metrics_.proxy_oversize_rejections +=
        pc.cache->stats().oversize_rejections;
    metrics_.proxy_tier2_promotions += pc.cache->stats().tier2_promotions;
    metrics_.proxy_tier2_demotions += pc.cache->stats().tier2_demotions;
  }

  if (sink_ != nullptr) {
    sink_->Emit({.type = obs::EventType::kRunEnd,
                 .at = wall_end_,
                 .label = metrics_.Summary()});
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& registry = *config_.metrics;
    metrics_.ExportTo(registry);
    accel_.ExportMetrics(registry, "accelerator.");
    net_.ExportMetrics(registry, "network.");
    for (const PseudoClient& pc : clients_) {
      pc.cache->ExportMetrics(
          registry, "proxy." + std::to_string(pc.index) + ".cache.");
    }
    if (parent_cache_ != nullptr) {
      parent_cache_->ExportMetrics(registry, "parent.cache.");
    }
    if (parent_table_ != nullptr) {
      parent_table_->ExportMetrics(registry, "parent.table.");
    }
  }
  return metrics_;
}

// --- lock-step coordinator ---------------------------------------------------

void Engine::StartInterval() {
  const Time window_start =
      static_cast<Time>(interval_index_) * config_.lockstep_interval;
  const Time window_end = (interval_index_ + 1 == num_intervals_)
                              ? trace_.duration + 1
                              : window_start + config_.lockstep_interval;

  while (failure_cursor_ < failures_.size() &&
         failures_[failure_cursor_].trace_time < window_end) {
    ApplyFailure(failures_[failure_cursor_++]);
  }
  if (fault_clock_ != nullptr) fault_clock_->Advance(window_start, window_end);

  if (InvalidationMode()) {
    // O(expired) amortized: each shard's timer wheel only visits the slots
    // the clock passed since the previous window, so this boundary sweep
    // no longer scans the whole table (ROADMAP item 4).
    accel_.PruneExpired(window_start);
    // Section 6's write-latency bound: a write blocked on unreachable
    // targets completes once their leases have all lapsed.
    SweepExpiredWriteTargets(window_start);
  }

  participants_ = static_cast<int>(clients_.size()) + 1;  // clients + modifier

  for (PseudoClient& pc : clients_) {
    while (pc.window_end < pc.records.size() &&
           pc.records[pc.window_end].timestamp < window_end) {
      ++pc.window_end;
    }
    sim_.After(0, [this, &pc] { IssueNext(pc); });
  }

  while (mod_window_end_ < modifications_.size() &&
         modifications_[mod_window_end_].at < window_end) {
    ++mod_window_end_;
  }
  sim_.After(0, [this] { ModifierStep(); });
}

void Engine::ParticipantDone() {
  WEBCC_CHECK(participants_ > 0);
  if (--participants_ > 0) return;
  ++interval_index_;
  if (interval_index_ < num_intervals_) {
    StartInterval();
  } else {
    wall_end_ = sim_.now();
  }
}

void Engine::ApplyFailure(const FailureEvent& event) {
  switch (event.kind) {
    case FailureKind::kProxyCrash: {
      PseudoClient& pc = clients_.at(event.target);
      pc.down = true;
      net_.SetNodeUp(pc.node, false);
      obs::Emit(sink_, {.type = obs::EventType::kNodeCrash,
                        .at = sim_.now(),
                        .trace_time = event.trace_time,
                        .site = proxy_site_names_[event.target]});
      break;
    }
    case FailureKind::kProxyRecover: {
      PseudoClient& pc = clients_.at(event.target);
      pc.down = false;
      net_.SetNodeUp(pc.node, true);
      // The recovering proxy may have missed invalidations: everything it
      // holds must be revalidated before it can be served again.
      pc.cache->MarkAllQuestionable();
      obs::Emit(sink_, {.type = obs::EventType::kNodeRestart,
                        .at = sim_.now(),
                        .trace_time = event.trace_time,
                        .site = proxy_site_names_[event.target]});
      break;
    }
    case FailureKind::kServerCrash:
      server_down_ = true;
      net_.SetNodeUp(ServerNode(), false);
      if (InvalidationMode()) {
        accel_.Crash();
        write_gap_active_ = true;
      }
      obs::Emit(sink_, {.type = obs::EventType::kNodeCrash,
                        .at = sim_.now(),
                        .trace_time = event.trace_time,
                        .site = "server"});
      break;
    case FailureKind::kServerRecover:
      server_down_ = false;
      net_.SetNodeUp(ServerNode(), true);
      obs::Emit(sink_, {.type = obs::EventType::kNodeRestart,
                        .at = sim_.now(),
                        .trace_time = event.trace_time,
                        .site = "server"});
      if (InvalidationMode()) ServerRecover(event.trace_time);
      break;
    case FailureKind::kPartition:
      net_.Partition(clients_.at(event.target).node, ServerNode());
      break;
    case FailureKind::kHeal:
      net_.Heal(clients_.at(event.target).node, ServerNode());
      break;
  }
}

// --- pseudo-client request loop ------------------------------------------------

void Engine::IssueNext(PseudoClient& pc) {
  if (pc.down) {
    // Requests from users behind a dead proxy are lost for the interval.
    metrics_.requests_skipped += pc.window_end - pc.cursor;
    pc.cursor = pc.window_end;
  }
  if (pc.cursor >= pc.window_end) {
    ParticipantDone();
    return;
  }
  const trace::TraceRecord& record = pc.records[pc.cursor++];
  ++metrics_.requests_issued;

  const std::string& url = DocPath(record.doc);
  // Shared mode: the whole proxy is one site (the firewall deployment of
  // Section 7) — one cache namespace and one invalidation target per proxy.
  const std::string& owner = config_.shared_proxy_cache
                                 ? proxy_site_names_[pc.index]
                                 : trace_.clients[record.client];
  const Time trace_time = record.timestamp;
  http::CacheEntry* entry =
      pc.cache->Lookup(http::ComposeCacheKey(url, owner), trace_time);

  bool validate = false;       // IMS instead of a full GET
  bool lease_renewal = false;  // the IMS exists only because a lease lapsed
  if (entry != nullptr) {
    const core::consistency::HitDecision decision =
        policy_->OnHit(MetaOf(*entry), trace_time);
    if (decision.action == HitAction::kServeLocal) {
      LocalServe(pc, *entry, trace_time);
      return;
    }
    validate = true;
    lease_renewal = decision.lease_renewal;
  }

  net::Request request;
  request.url = url;
  request.client_id = owner;
  if (validate) {
    request.type = net::MessageType::kIfModifiedSince;
    request.if_modified_since = entry->last_modified;
  } else {
    request.type = net::MessageType::kGet;
  }
  SendToServer(pc, std::move(request), trace_time, lease_renewal);
}

void Engine::FinishRequest(PseudoClient& pc, Time latency) {
  metrics_.latency_ms.Record(ToMillis(latency));
  sim_.After(config_.client_costs.think_time, [this, &pc] { IssueNext(pc); });
}

void Engine::CheckStaleness(const PseudoClient& pc,
                            const http::CacheEntry& entry, Time trace_time) {
  const std::optional<Time> stale_since = StaleSince(entry, trace_time);
  if (!stale_since.has_value()) return;
  ++metrics_.stale_serves;
  // Trace-time age of the outdated copy: the weak protocols' staleness is
  // bounded by TTL, lease-augmented schemes by the lease duration.
  metrics_.stale_age_ms.Record(ToMillis(trace_time - *stale_since));
  obs::StaleKind kind = obs::StaleKind::kWeakProtocol;
  if (Traits().invalidation_callbacks) {
    const auto it = writes_in_progress_.find(entry.url);
    if (write_gap_active_ ||
        (it != writes_in_progress_.end() && it->second > 0)) {
      // The write has not completed (invalidations still in flight): a stale
      // read here is within the strong-consistency contract.
      ++metrics_.stale_while_invalidation_in_flight;
      kind = obs::StaleKind::kInvalidationInFlight;
    } else {
      ++metrics_.strong_violations;
      kind = obs::StaleKind::kStrongViolation;
      WEBCC_LOG_WARN(
          "strong-consistency violation: %s served stale at client %s (proxy %d)",
          entry.url.c_str(), entry.owner.c_str(), pc.index);
    }
  }
  obs::Emit(sink_, {.type = obs::EventType::kStaleHit,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = entry.url,
                    .site = entry.owner,
                    .detail = static_cast<std::int64_t>(kind)});
}

void Engine::LocalServe(PseudoClient& pc, http::CacheEntry& entry,
                        Time trace_time) {
  ++metrics_.local_hits;
  obs::Emit(sink_,
            {.type = obs::EventType::kRequestServed,
             .at = sim_.now(),
             .trace_time = trace_time,
             .url = entry.url,
             .site = entry.owner,
             .detail = static_cast<std::int64_t>(obs::ServeKind::kLocalHit)});
  CheckStaleness(pc, entry, trace_time);
  FinishRequest(pc, config_.client_costs.proxy_hit_time);
}

void Engine::SendToServer(PseudoClient& pc, net::Request request,
                          Time trace_time, bool lease_renewal) {
  const std::uint64_t seq = next_seq_++;
  pc.outstanding = seq;
  pc.request_start = sim_.now();

  if (request.type == net::MessageType::kGet) {
    ++metrics_.get_requests;
    obs::Emit(sink_, {.type = obs::EventType::kGetSent,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = request.url,
                      .site = request.client_id});
  } else {
    ++metrics_.ims_requests;
    if (lease_renewal) ++metrics_.lease_renewal_ims;
    obs::Emit(sink_, {.type = obs::EventType::kImsSent,
                      .at = sim_.now(),
                      .trace_time = trace_time,
                      .url = request.url,
                      .site = request.client_id,
                      .detail = lease_renewal ? 1 : 0});
  }

  // PCV: since we are contacting the server anyway, piggyback a batch of
  // this proxy's TTL-expired entries for bulk validation.
  std::uint64_t piggyback_bytes = 0;
  if (Traits().piggyback_validation) {
    std::vector<core::PcvItem> items;
    const std::string requested_key =
        http::ComposeCacheKey(request.url, request.client_id);
    for (http::CacheEntry* expired : pc.cache->TakeExpired(
             trace_time, config_.piggyback.max_validations_per_request)) {
      if (expired->key == requested_key) {
        // The request itself validates this entry; leave it indexed.
        pc.cache->SetTtlExpiry(*expired, expired->ttl_expires);
        continue;
      }
      items.push_back(core::PcvItem{expired->url, expired->owner,
                                    expired->last_modified});
    }
    metrics_.pcv_items_piggybacked += items.size();
    piggyback_bytes = core::PcvRequestExtraBytes(items);
    if (!items.empty()) pcv_in_flight_[seq] = std::move(items);
  }
  metrics_.message_bytes += net::WireSize(request) + piggyback_bytes;

  // Reply timeout: the closed loop must advance even if the server is dead.
  sim_.After(config_.client_costs.request_timeout, [this, &pc, seq] {
    if (pc.outstanding != seq) return;
    pc.outstanding = 0;
    pcv_in_flight_.erase(seq);
    ++metrics_.request_timeouts;
    obs::Emit(sink_, {.type = obs::EventType::kRequestTimeout,
                      .at = sim_.now(),
                      .detail = static_cast<std::int64_t>(seq)});
    FinishRequest(pc, config_.client_costs.request_timeout);
  });

  // In hierarchical mode leaf misses go to the parent proxy, not the server.
  const sim::NodeId upstream =
      config_.hierarchical ? ParentNode() : ServerNode();
  const std::uint64_t wire = net::WireSize(request) + piggyback_bytes;
  sim_.After(config_.client_costs.proxy_forward_overhead,
             [this, &pc, request = std::move(request), seq, trace_time, wire,
              upstream]() mutable {
               net_.Send(pc.node, upstream, wire,
                         [this, request = std::move(request),
                          index = pc.index, seq, trace_time] {
                           if (config_.hierarchical) {
                             ParentHandle(request, index, seq, trace_time);
                           } else {
                             ServerHandle(request, index, seq, trace_time);
                           }
                         });
             });
}

void Engine::ServerHandle(const net::Request& request, int client_index,
                          std::uint64_t seq, Time trace_time) {
  std::optional<net::Reply> reply =
      InvalidationMode() ? accel_.HandleRequest(request, trace_time)
                         : origin_->Handle(request, trace_time);
  WEBCC_CHECK_MSG(reply.has_value(), "trace referenced an unknown document");

  const bool transfer = reply->type == net::MessageType::kReply200;
  const http::ServerCosts& costs = config_.server_costs;
  // PCV: bulk-validate the piggybacked batch against the file system.
  std::vector<core::PcvVerdict> verdicts;
  if (const auto it = pcv_in_flight_.find(seq); it != pcv_in_flight_.end()) {
    verdicts = core::ValidatePiggyback(docs_, it->second);
    pcv_in_flight_.erase(it);
  }

  // PSI: attach the documents modified since this proxy's last contact and
  // advance its cursor.
  std::vector<std::string> psi_urls;
  if (Traits().piggyback_invalidation) {
    Time& cursor = psi_last_contact_[client_index];
    core::ModificationLog::Window window = mod_log_.CollectSince(
        cursor, trace_time, config_.piggyback.max_invalidations_per_reply);
    cursor = std::max(cursor, window.advanced_to);
    psi_urls = std::move(window.urls);
  }

  const Time piggyback_cpu =
      static_cast<Time>(verdicts.size() + psi_urls.size()) *
      costs.piggyback_item_cpu;

  // Access log write (all approaches log incoming requests).
  server_disk_.utilization().AddWrite();
  const Time log_done = server_disk_.Enqueue(costs.disk_op);
  Time ready = server_cpu_.Enqueue(
      (transfer ? costs.request_cpu_200 : costs.request_cpu_304) +
      piggyback_cpu);
  if (transfer) {
    // The file read must complete before the body can be sent.
    server_disk_.utilization().AddRead();
    ready = std::max(ready, server_disk_.Enqueue(costs.disk_op));
  }
  (void)log_done;  // logging is asynchronous w.r.t. the reply

  if (transfer) {
    ++metrics_.replies_200;
  } else {
    ++metrics_.replies_304;
  }
  obs::Emit(sink_, {.type = transfer ? obs::EventType::kReply200
                                     : obs::EventType::kReply304,
                    .at = sim_.now(),
                    .trace_time = trace_time,
                    .url = reply->url,
                    .site = request.client_id});
  const std::uint64_t piggyback_bytes =
      core::PcvReplyExtraBytes(verdicts) + core::PsiReplyExtraBytes(psi_urls);
  metrics_.message_bytes += net::WireSize(*reply) + piggyback_bytes;

  // Transfer delay uses the scaled-down body, as in the paper's testbed.
  const auto scaled_body = static_cast<std::uint64_t>(
      static_cast<double>(reply->body_bytes) / config_.size_scale);
  const std::uint64_t wire_bytes = net::kControlHeaderBytes +
                                   reply->url.size() + scaled_body +
                                   piggyback_bytes;

  sim_.At(ready, [this, client_index, seq, reply = std::move(*reply),
                  owner = request.client_id, trace_time, wire_bytes,
                  verdicts = std::move(verdicts),
                  psi_urls = std::move(psi_urls)]() mutable {
    net_.Send(ServerNode(), clients_[client_index].node, wire_bytes,
              [this, client_index, seq, reply = std::move(reply),
               owner = std::move(owner), trace_time,
               verdicts = std::move(verdicts),
               psi_urls = std::move(psi_urls)]() mutable {
                ApplyPiggyback(client_index, verdicts, psi_urls, trace_time);
                DeliverReply(client_index, seq, std::move(reply),
                             std::move(owner), trace_time);
              });
  });
}

// Applies PCV verdicts and PSI change notices at the proxy, before the
// reply itself is processed (so a just-fetched body is inserted after any
// purge of its URL).
void Engine::ApplyPiggyback(int client_index,
                            const std::vector<core::PcvVerdict>& verdicts,
                            const std::vector<std::string>& psi_urls,
                            Time trace_time) {
  PseudoClient& pc = clients_[client_index];
  for (const core::PcvVerdict& verdict : verdicts) {
    const std::string key =
        http::ComposeCacheKey(verdict.url, verdict.owner);
    http::CacheEntry* entry = pc.cache->Peek(key);
    if (entry == nullptr) continue;
    if (verdict.invalid) {
      pc.cache->Erase(key);
      ++metrics_.pcv_invalidated;
    } else {
      pc.cache->SetTtlExpiry(*entry,
                             policy_->OnPcvValid(MetaOf(*entry), trace_time));
    }
  }
  for (const std::string& url : psi_urls) {
    ++metrics_.psi_notices;
    metrics_.psi_entries_erased += pc.cache->EraseByUrl(url);
  }
}

http::CacheEntry Engine::BuildEntry(const net::Reply& reply,
                                    const std::string& owner,
                                    Time trace_time) const {
  http::CacheEntry entry;
  entry.key = http::ComposeCacheKey(reply.url, owner);
  entry.url = reply.url;
  entry.owner = owner;
  entry.size_bytes = reply.body_bytes;
  entry.last_modified = reply.last_modified;
  entry.version = reply.version;
  entry.fetched_at = trace_time;
  const core::consistency::InsertDecision decision =
      policy_->OnMissReply(MetaOf(reply), trace_time);
  entry.ttl_expires = decision.ttl_expires;
  entry.lease_expires = decision.lease_expires;
  return entry;
}

void Engine::DeliverReply(int client_index, std::uint64_t seq,
                          net::Reply reply, std::string owner,
                          Time trace_time) {
  PseudoClient& pc = clients_[client_index];
  if (pc.outstanding != seq) return;  // timed out; late reply dropped
  pc.outstanding = 0;

  if (reply.type == net::MessageType::kReply200) {
    obs::Emit(
        sink_,
        {.type = obs::EventType::kRequestServed,
         .at = sim_.now(),
         .trace_time = trace_time,
         .url = reply.url,
         .site = owner,
         .detail = static_cast<std::int64_t>(obs::ServeKind::kTransfer)});
    pc.cache->Insert(BuildEntry(reply, owner, trace_time), trace_time);
  } else {
    // 304: the cached copy is certified fresh as of this validation.
    ++metrics_.validated_hits;
    obs::Emit(
        sink_,
        {.type = obs::EventType::kRequestServed,
         .at = sim_.now(),
         .trace_time = trace_time,
         .url = reply.url,
         .site = owner,
         .detail = static_cast<std::int64_t>(obs::ServeKind::kValidated)});
    http::CacheEntry* entry =
        pc.cache->Peek(http::ComposeCacheKey(reply.url, owner));
    if (entry != nullptr) {
      const core::consistency::ValidateDecision decision =
          policy_->OnValidateReply(MetaOf(reply), trace_time);
      if (decision.clear_questionable) entry->questionable = false;
      if (decision.set_ttl) {
        pc.cache->SetTtlExpiry(*entry, decision.ttl_expires);
      }
      if (decision.set_lease) entry->lease_expires = decision.lease_expires;
    }
  }
  FinishRequest(pc, sim_.now() - pc.request_start);
}

}  // namespace detail

bool ParseLeafIndex(std::string_view site, int& index) {
  constexpr std::string_view kPrefix = "leaf-";
  if (site.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view digits = site.substr(kPrefix.size());
  if (digits.empty()) return false;
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), parsed);
  // from_chars accepts a leading '-'; site indices are non-negative, and the
  // whole suffix must be consumed (no "leaf-3x").
  if (ec != std::errc() || ptr != digits.data() + digits.size() || parsed < 0) {
    return false;
  }
  index = parsed;
  return true;
}

ReplayMetrics RunReplay(const ReplayConfig& config) {
  if (config.trace == nullptr && config.scenario != nullptr) {
    // Synthetic input: generate the workload locally. Each farm worker
    // running this path produces the identical workload (Generate is a pure
    // function of the scenario), which is what makes scenario replays
    // worker-count invariant without sharing a trace across threads.
    const synth::SynthWorkload workload = synth::Generate(*config.scenario);
    ReplayConfig local = config;
    local.trace = &workload.trace;
    local.scenario = nullptr;
    if (local.explicit_modifications.empty()) {
      // The scenario's write stream is the whole modification schedule —
      // even when it is empty (a read-only scenario must not fall back to
      // the mean-lifetime modifier process).
      local.explicit_modifications = workload.writes;
      local.suppress_generated_modifications = true;
    }
    detail::Engine engine(local);
    return engine.Run();
  }
  detail::Engine engine(config);
  return engine.Run();
}

}  // namespace webcc::replay
