// Property-based fault scenarios (ctest -L fault): the strong protocols
// must keep their consistency contract under randomized crash / partition /
// lossy-link schedules, every scenario must replay bit-identically (same
// per-seed trace digest across repeated runs and across farm worker
// counts), the weak protocol's staleness stays bounded by its TTL, a
// partition during a write blocks it for at most one lease duration
// (Section 6), and the golden corpus under tests/data/fault_plans/ pins
// whole scenarios to expected metrics and trace digests.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_accelerator.h"
#include "fault/plan.h"
#include "http/document_store.h"
#include "net/message.h"
#include "obs/trace_reader.h"
#include "obs/trace_sink.h"
#include "replay/engine.h"
#include "replay/farm.h"
#include "trace/workload.h"
#include "util/time.h"

namespace webcc::replay {
namespace {

using core::Protocol;

// One shared workload for every scenario: small enough that ~150 fault
// replays stay fast, busy enough that random fault windows hit real
// traffic.
const trace::Trace& ScenarioTrace() {
  static const trace::Trace trace = [] {
    trace::WorkloadConfig config;
    config.duration = 2 * kHour;
    config.total_requests = 900;
    config.num_documents = 80;
    config.num_clients = 40;
    config.seed = 5;
    return trace::GenerateTrace(config);
  }();
  return trace;
}

ReplayConfig FaultBaseConfig(Protocol protocol) {
  ReplayConfig config;
  config.protocol = protocol;
  config.trace = &ScenarioTrace();
  config.mean_lifetime = 6 * kHour;  // plenty of writes to race faults with
  // Ride out dead servers and partitions instead of stalling the loop.
  config.client_costs.request_timeout = 5 * kSecond;
  return config;
}

fault::RandomPlanConfig ScenarioPlanConfig() {
  fault::RandomPlanConfig config;
  config.horizon = ScenarioTrace().duration;
  config.clients = 4;  // targets are pseudo-client indices
  return config;
}

// --- randomized fault schedules: zero strong violations --------------------------

void RunStrongSeeds(const ReplayConfig& base, int seeds) {
  const fault::RandomPlanConfig plan_config = ScenarioPlanConfig();
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    const fault::FaultPlan plan = fault::Random(plan_config, seed);
    ReplayConfig config = base;
    config.fault_plan = &plan;
    config.fault_seed = seed;
    const ReplayMetrics metrics = RunReplay(config);
    EXPECT_EQ(metrics.strong_violations, 0u) << "fault seed " << seed;
    // Stale serves are legal only while the write is still incomplete; all
    // writes must eventually complete even under faults.
    EXPECT_EQ(metrics.stale_serves,
              metrics.stale_while_invalidation_in_flight)
        << "fault seed " << seed;
  }
}

TEST(FaultScenarios, InvalidationSurvives50RandomPlans) {
  RunStrongSeeds(FaultBaseConfig(Protocol::kInvalidation), 50);
}

TEST(FaultScenarios, InvalidationTwoTierLeaseSurvives50RandomPlans) {
  ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
  config.lease.mode = core::LeaseMode::kTwoTier;
  config.lease.duration = 20 * kMinute;
  config.lease.short_duration = 5 * kMinute;
  RunStrongSeeds(config, 50);
}

TEST(FaultScenarios, PollEveryTimeSurvives50RandomPlans) {
  RunStrongSeeds(FaultBaseConfig(Protocol::kPollEveryTime), 50);
}

// --- determinism: per-seed digests across runs and worker counts -----------------

TEST(FaultScenarios, DigestsIdenticalAcrossRunsAndWorkerCounts) {
  const fault::RandomPlanConfig plan_config = ScenarioPlanConfig();
  std::vector<fault::FaultPlan> plans;
  plans.reserve(6);
  for (std::uint64_t seed = 101; seed <= 106; ++seed) {
    plans.push_back(fault::Random(plan_config, seed));
  }
  const auto make_configs = [&plans] {
    std::vector<ReplayConfig> configs;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
      if (i % 2 == 1) {
        config.lease.mode = core::LeaseMode::kTwoTier;
        config.lease.duration = 20 * kMinute;
        config.lease.short_duration = 5 * kMinute;
      }
      config.fault_plan = &plans[i];
      config.fault_seed = 101 + i;
      configs.push_back(config);
    }
    return configs;
  };

  struct RunOutput {
    std::vector<ReplayMetrics> metrics;
    std::string trace_text;
  };
  const auto run_with_workers = [&make_configs](unsigned workers) {
    RunOutput out;
    obs::BufferTraceSink merged;
    Farm farm(workers);
    farm.set_merged_trace_sink(&merged);
    for (ReplayConfig& config : make_configs()) farm.Submit(std::move(config));
    out.metrics = farm.Collect();
    out.trace_text = merged.TakeText();
    return out;
  };

  const RunOutput serial_a = run_with_workers(1);
  const RunOutput serial_b = run_with_workers(1);
  const RunOutput farmed = run_with_workers(8);

  ASSERT_EQ(serial_a.metrics.size(), plans.size());
  ASSERT_FALSE(serial_a.trace_text.empty());
  // Same scenario, same seed, any schedule: identical simulation, identical
  // byte stream, identical digest.
  EXPECT_EQ(obs::DigestJsonl(serial_a.trace_text),
            obs::DigestJsonl(serial_b.trace_text));
  EXPECT_EQ(obs::DigestJsonl(serial_a.trace_text),
            obs::DigestJsonl(farmed.trace_text));
  EXPECT_EQ(serial_a.trace_text, farmed.trace_text);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_TRUE(SameSimulation(serial_a.metrics[i], serial_b.metrics[i]))
        << "job " << i;
    EXPECT_TRUE(SameSimulation(serial_a.metrics[i], farmed.metrics[i]))
        << "job " << i;
    EXPECT_GT(serial_a.metrics[i].injected_drops +
                  serial_a.metrics[i].injected_dups +
                  serial_a.metrics[i].injected_delays,
              0u)
        << "plan " << i << " injected nothing — scenario too tame";
  }
}

// --- weak protocol: staleness bounded by its TTL ---------------------------------

TEST(FaultScenarios, AdaptiveTtlStalenessBoundedByMaxTtl) {
  const fault::RandomPlanConfig plan_config = [] {
    fault::RandomPlanConfig config = ScenarioPlanConfig();
    config.allow_server_crash = false;  // weak protocols serve only on contact
    return config;
  }();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const fault::FaultPlan plan = fault::Random(plan_config, seed);
    ReplayConfig config = FaultBaseConfig(Protocol::kAdaptiveTtl);
    config.ttl.max_ttl = 30 * kMinute;
    config.fault_plan = &plan;
    config.fault_seed = seed;
    const ReplayMetrics metrics = RunReplay(config);
    // A copy is served only while its TTL holds, so its staleness can never
    // exceed the TTL cap (lock-step granularity absorbed).
    if (metrics.stale_age_ms.count() > 0) {
      EXPECT_LE(metrics.stale_age_ms.max(),
                ToMillis(config.ttl.max_ttl + config.lockstep_interval))
          << "fault seed " << seed;
    }
  }
}

// --- Section 6: a partition blocks a write for at most one lease ------------------

TEST(FaultScenarios, PartitionDuringWriteBoundedByLeaseDuration) {
  // Every proxy-server link is cut for 40 minutes starting at t=30m; every
  // document is modified 5 minutes into the partition. Without leases those
  // writes would block until the heal; with two-tier leases each write must
  // complete within one lease duration.
  fault::FaultPlan plan;
  plan.name = "partition-during-write";
  plan.events.push_back({.at = 30 * kMinute,
                         .kind = fault::FaultKind::kPartition,
                         .target = -1,
                         .duration = 40 * kMinute});

  ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
  config.lease.mode = core::LeaseMode::kTwoTier;
  config.lease.duration = 20 * kMinute;
  config.lease.short_duration = 5 * kMinute;
  config.fault_plan = &plan;
  config.explicit_modifications.clear();
  for (trace::DocId doc = 0; doc < 80; ++doc) {
    config.explicit_modifications.push_back({35 * kMinute, doc});
  }

  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_GT(metrics.write_completions, 0u);
  // At least one write had a partitioned straggler resolved by the Section 6
  // lease bound instead of an ack.
  EXPECT_GT(metrics.write_lease_expired_completions, 0u);
  ASSERT_GT(metrics.write_blocked_trace_ms.count(), 0u);
  // The bound itself: no write stayed incomplete longer than the (regular)
  // lease duration, measured at lock-step granularity. The 40-minute
  // partition must NOT show through.
  EXPECT_LE(metrics.write_blocked_trace_ms.max(),
            ToMillis(config.lease.duration + config.lockstep_interval));
}

TEST(FaultScenarios, LeaselessPartitionedWriteBlocksUntilHealOrDeath) {
  // Contrast case for the bound above: same scenario without leases may
  // block writes well past one lease duration (heal or retry exhaustion is
  // the only way out) — showing the lease bound is what bounded it.
  fault::FaultPlan plan;
  plan.name = "partition-during-write-leaseless";
  plan.events.push_back({.at = 30 * kMinute,
                         .kind = fault::FaultKind::kPartition,
                         .target = -1,
                         .duration = 40 * kMinute});

  ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
  config.fault_plan = &plan;
  for (trace::DocId doc = 0; doc < 80; ++doc) {
    config.explicit_modifications.push_back({35 * kMinute, doc});
  }
  const ReplayMetrics metrics = RunReplay(config);
  EXPECT_EQ(metrics.strong_violations, 0u);
  EXPECT_GT(metrics.write_completions, 0u);
}

// --- golden corpus ---------------------------------------------------------------

// Every golden plan runs under this one fixed configuration, so the files'
// expected values are comparable and regeneration is mechanical: on
// mismatch the failure message prints the full actual "expect" block to
// paste into the JSON.
std::map<std::string, std::string> RunGolden(const fault::FaultPlan& plan) {
  obs::BufferTraceSink sink;
  ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
  config.lease.mode = core::LeaseMode::kTwoTier;
  config.lease.duration = 20 * kMinute;
  config.lease.short_duration = 5 * kMinute;
  config.fault_plan = &plan;
  config.fault_seed = 1;
  config.trace_sink = &sink;
  const ReplayMetrics metrics = RunReplay(config);

  std::map<std::string, std::string> actual;
  const auto put = [&actual](std::string_view name, std::uint64_t value) {
    actual[std::string(name)] = std::to_string(value);
  };
  put("requests_issued", metrics.requests_issued);
  put("strong_violations", metrics.strong_violations);
  put("stale_serves", metrics.stale_serves);
  put("invalidations_sent", metrics.invalidations_sent);
  put("invsrv_sent", metrics.invsrv_sent);
  put("recovery_invalidations_sent", metrics.recovery_invalidations_sent);
  put("write_completions", metrics.write_completions);
  put("write_lease_expired_completions",
      metrics.write_lease_expired_completions);
  put("journal_rebuilds", metrics.journal_rebuilds);
  put("journal_damaged_recoveries", metrics.journal_damaged_recoveries);
  put("injected_drops", metrics.injected_drops);
  put("injected_dups", metrics.injected_dups);
  put("injected_delays", metrics.injected_delays);
  put("trace_digest", obs::DigestJsonl(sink.Text()));
  return actual;
}

std::string FormatExpectBlock(const std::map<std::string, std::string>& m) {
  std::string out = "  \"expect\": {\n";
  for (auto it = m.begin(); it != m.end(); ++it) {
    out += "    \"" + it->first + "\": " + it->second;
    out += std::next(it) == m.end() ? "\n" : ",\n";
  }
  out += "  }";
  return out;
}

TEST(FaultGoldenCorpus, PlansReproduceExpectedMetricsAndDigests) {
  const std::filesystem::path dir =
      std::filesystem::path(WEBCC_TEST_DATA_DIR) / "fault_plans";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;

  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    ++files;
    SCOPED_TRACE(entry.path().filename().string());

    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    fault::FaultPlanFile file;
    std::string error;
    ASSERT_TRUE(fault::ParseFaultPlanFile(text.str(), file, error)) << error;
    ASSERT_FALSE(file.plan.empty());
    ASSERT_FALSE(file.expect.empty())
        << "golden plan has no expect block to check";

    const std::map<std::string, std::string> actual = RunGolden(file.plan);
    for (const auto& [name, expected] : file.expect) {
      const auto found = actual.find(name);
      ASSERT_NE(found, actual.end()) << "unknown expect metric: " << name;
      EXPECT_EQ(found->second, expected)
          << name << " drifted; full actual block:\n"
          << FormatExpectBlock(actual);
    }
  }
  // The corpus itself is under test: losing the files is a failure.
  EXPECT_GE(files, 3);
}

// --- sharded tier under faults ---------------------------------------------------

// A server crash in the middle of a burst of writes, with the decoupled
// batched sender mid-flight: every shard must rebuild from its own journal,
// and the union of the rebuilt site lists must equal what the single-journal
// tier restores. Serialized-mode metrics are the strongest check (they are
// shard-invariant by construction, modulo the per-shard site-interning
// storage bytes).
TEST(FaultScenarios, ServerCrashJournalRecoveryShardInvariantSerialized) {
  fault::FaultPlan plan;
  plan.name = "crash-mid-write-storm";
  plan.events.push_back({.at = 40 * kMinute,
                         .kind = fault::FaultKind::kServerCrash,
                         .target = -1,
                         .duration = 2 * kMinute});

  const auto run = [&plan](std::uint32_t shards) {
    obs::BufferTraceSink sink;
    ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
    config.lease.mode = core::LeaseMode::kTwoTier;
    config.lease.duration = 20 * kMinute;
    config.lease.short_duration = 5 * kMinute;
    config.fault_plan = &plan;
    config.accelerator_shards = shards;
    // Writes racing the crash window so the journal has fresh records.
    for (trace::DocId doc = 0; doc < 40; ++doc) {
      config.explicit_modifications.push_back({39 * kMinute, doc});
    }
    config.trace_sink = &sink;
    struct Out {
      ReplayMetrics metrics;
      std::string digest;
    } out;
    out.metrics = RunReplay(config);
    out.digest = obs::DigestJsonl(sink.TakeText());
    return out;
  };

  const auto baseline = run(1);
  EXPECT_GT(baseline.metrics.journal_rebuilds, 0u);
  EXPECT_EQ(baseline.metrics.journal_damaged_recoveries, 0u);
  EXPECT_EQ(baseline.metrics.strong_violations, 0u);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    auto sharded = run(shards);
    EXPECT_EQ(sharded.digest, baseline.digest) << shards << " shards";
    sharded.metrics.sitelist_storage_bytes =
        baseline.metrics.sitelist_storage_bytes;
    EXPECT_TRUE(SameSimulation(baseline.metrics, sharded.metrics))
        << shards << " shards";
  }
}

// The decoupled batched tier under the same crash: correctness invariants
// must hold at every shard count even though timing (and therefore the raw
// event interleaving) legitimately differs between shard counts here.
TEST(FaultScenarios, CrashDuringBatchedSendRecoversAtEveryShardCount) {
  fault::FaultPlan plan;
  plan.name = "crash-during-batched-send";
  plan.events.push_back({.at = 40 * kMinute,
                         .kind = fault::FaultKind::kServerCrash,
                         .target = -1,
                         .duration = 2 * kMinute});

  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    ReplayConfig config = FaultBaseConfig(Protocol::kInvalidation);
    config.lease.mode = core::LeaseMode::kTwoTier;
    config.lease.duration = 20 * kMinute;
    config.lease.short_duration = 5 * kMinute;
    config.serialized_invalidation = false;
    config.invalidation_batch_window = 200 * kMillisecond;
    config.accelerator_shards = shards;
    config.fault_plan = &plan;
    // A write storm right before the crash puts whole batches in flight.
    for (trace::DocId doc = 0; doc < 40; ++doc) {
      config.explicit_modifications.push_back({39 * kMinute + 50 * doc, doc});
    }
    const ReplayMetrics metrics = RunReplay(config);
    EXPECT_EQ(metrics.strong_violations, 0u) << shards << " shards";
    EXPECT_EQ(metrics.stale_serves, metrics.stale_while_invalidation_in_flight)
        << shards << " shards";
    EXPECT_GT(metrics.journal_rebuilds, 0u) << shards << " shards";
    EXPECT_GT(metrics.invalidation_frames_sent, 0u) << shards << " shards";
    // Every queued invalidation is accounted for: delivered, coalesced into
    // a delivered entry, refused at a dead site, or still held for a site
    // the run ended partitioned from.
    EXPECT_LE(metrics.invalidations_delivered + metrics.invalidations_coalesced +
                  metrics.invalidations_refused,
              metrics.invalidations_sent)
        << shards << " shards";
  }
}

// The exact-union claim at the core layer: after a crash, per-shard journal
// rebuild restores the same (url, site, lease) entry set the single-journal
// accelerator restores — not a subset, not a superset.
TEST(FaultScenarios, PerShardJournalRebuildRestoresExactUnionOfSiteLists) {
  http::DocumentStore docs;
  std::vector<std::string> urls;
  for (int i = 0; i < 48; ++i) {
    urls.push_back("/union/doc-" + std::to_string(i));
    docs.Add(urls.back(), 2048, 0);
  }

  const auto drive = [&docs, &urls](std::uint32_t shards) {
    core::LeaseConfig lease;
    lease.mode = core::LeaseMode::kFixed;
    lease.duration = kHour;
    core::ShardedAccelerator accel(docs, lease, shards);
    accel.EnableJournal(true);
    for (std::size_t i = 0; i < urls.size(); ++i) {
      for (int s = 0; s < 1 + static_cast<int>(i % 3); ++s) {
        net::Request request;
        request.url = urls[i];
        request.client_id = "site-" + std::to_string(s);
        request.type = net::MessageType::kGet;
        accel.HandleRequest(request, kMinute);
      }
    }
    // A few writes before the crash leave invalidation records (and version
    // bumps) in the journal, so the rebuild is not a pure registration log.
    for (std::size_t i = 0; i < urls.size(); i += 6) {
      docs.Touch(urls[i], 2 * kMinute);
      accel.HandleNotify(net::Notify{urls[i]}, 2 * kMinute);
    }
    accel.Crash();
    const core::ShardedAccelerator::RecoveryOutcome outcome =
        accel.RecoverFromJournal(3 * kMinute);
    EXPECT_FALSE(outcome.journal_damaged) << shards << " shards";
    return accel.SnapshotEntries();
  };

  const std::vector<core::InvalidationTable::Snapshot> baseline = drive(1);
  ASSERT_FALSE(baseline.empty());
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const std::vector<core::InvalidationTable::Snapshot> sharded =
        drive(shards);
    ASSERT_EQ(sharded.size(), baseline.size()) << shards << " shards";
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(sharded[i].url, baseline[i].url) << shards << " shards";
      EXPECT_EQ(sharded[i].site, baseline[i].site) << shards << " shards";
      EXPECT_EQ(sharded[i].lease_until, baseline[i].lease_until)
          << shards << " shards";
    }
  }
}

}  // namespace
}  // namespace webcc::replay
