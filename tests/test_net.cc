// Unit tests for net/: message model, wire sizes, codec round trips.
#include <gtest/gtest.h>

#include <string>

#include "net/message.h"
#include "net/wire.h"

namespace webcc::net {
namespace {

// --- wire sizes ----------------------------------------------------------------

TEST(WireSize, ControlMessagesAreHeaderPlusFields) {
  Request request;
  request.url = "/a";
  request.client_id = "c1";
  EXPECT_EQ(WireSize(request), kControlHeaderBytes + 4);
}

TEST(WireSize, Reply200IncludesBody) {
  Reply reply;
  reply.type = MessageType::kReply200;
  reply.url = "/a";
  reply.body_bytes = 5000;
  EXPECT_EQ(WireSize(reply), kControlHeaderBytes + 2 + 5000);
}

TEST(WireSize, Reply304HasNoBody) {
  Reply reply;
  reply.type = MessageType::kReply304;
  reply.url = "/abc";
  EXPECT_EQ(WireSize(reply), kControlHeaderBytes + 4);
}

TEST(WireSize, InvalidationCountsAllIdentifiers) {
  Invalidation inv;
  inv.url = "/x";
  inv.client_id = "site";
  EXPECT_EQ(WireSize(inv), kControlHeaderBytes + 6);
}

TEST(MessageTypeName, AllNamed) {
  EXPECT_STREQ(MessageTypeName(MessageType::kGet), "GET");
  EXPECT_STREQ(MessageTypeName(MessageType::kIfModifiedSince), "IMS");
  EXPECT_STREQ(MessageTypeName(MessageType::kReply200), "200");
  EXPECT_STREQ(MessageTypeName(MessageType::kReply304), "304");
  EXPECT_STREQ(MessageTypeName(MessageType::kInvalidateUrl), "INV");
  EXPECT_STREQ(MessageTypeName(MessageType::kInvalidateServer), "INVSRV");
  EXPECT_STREQ(MessageTypeName(MessageType::kNotify), "NOTIFY");
}

// --- escaping ---------------------------------------------------------------------

TEST(Escape, PassesPlainThrough) {
  EXPECT_EQ(EscapeField("/docs/a.html"), "/docs/a.html");
}

TEST(Escape, EscapesSpacesAndPercent) {
  EXPECT_EQ(EscapeField("a b%c"), "a%20b%25c");
}

TEST(Escape, EscapesControlBytes) {
  EXPECT_EQ(EscapeField("a\nb"), "a%0Ab");
}

TEST(Escape, RoundTripsArbitraryBytes) {
  std::string raw;
  for (int c = 0; c < 256; ++c) raw += static_cast<char>(c);
  const auto back = UnescapeField(EscapeField(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
}

TEST(Escape, RejectsTruncatedEscape) {
  EXPECT_FALSE(UnescapeField("abc%2").has_value());
  EXPECT_FALSE(UnescapeField("abc%zz").has_value());
}

// --- codec round trips ---------------------------------------------------------------

TEST(Wire, GetRoundTrip) {
  Request request;
  request.type = MessageType::kGet;
  request.url = "/docs/00001.html";
  request.client_id = "10.0.0.1";
  const auto decoded = DecodeLine(EncodeLine(request));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Request>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type, MessageType::kGet);
  EXPECT_EQ(back->url, request.url);
  EXPECT_EQ(back->client_id, request.client_id);
}

TEST(Wire, ImsRoundTripKeepsTimestamp) {
  Request request;
  request.type = MessageType::kIfModifiedSince;
  request.url = "/a";
  request.client_id = "c";
  request.if_modified_since = -123456789;
  const auto decoded = DecodeLine(EncodeLine(request));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Request>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->if_modified_since, -123456789);
}

TEST(Wire, Reply200RoundTrip) {
  Reply reply;
  reply.type = MessageType::kReply200;
  reply.url = "/big file.bin";  // needs escaping
  reply.body_bytes = 987654321;
  reply.last_modified = 42;
  reply.version = 7;
  reply.lease_until = 999999;
  const auto decoded = DecodeLine(EncodeLine(reply));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Reply>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type, MessageType::kReply200);
  EXPECT_EQ(back->url, reply.url);
  EXPECT_EQ(back->body_bytes, reply.body_bytes);
  EXPECT_EQ(back->last_modified, 42);
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->lease_until, 999999);
}

TEST(Wire, Reply304RoundTripWithNoLease) {
  Reply reply;
  reply.type = MessageType::kReply304;
  reply.url = "/a";
  reply.last_modified = 5;
  reply.lease_until = kNoLease;
  const auto decoded = DecodeLine(EncodeLine(reply));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Reply>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type, MessageType::kReply304);
  EXPECT_EQ(back->lease_until, kNoLease);
}

TEST(Wire, InvalidationUrlRoundTrip) {
  Invalidation inv;
  inv.type = MessageType::kInvalidateUrl;
  inv.url = "/x y";
  inv.client_id = "alice@5000";
  const auto decoded = DecodeLine(EncodeLine(inv));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Invalidation>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type, MessageType::kInvalidateUrl);
  EXPECT_EQ(back->url, inv.url);
  EXPECT_EQ(back->client_id, inv.client_id);
}

TEST(Wire, InvalidationServerRoundTrip) {
  Invalidation inv;
  inv.type = MessageType::kInvalidateServer;
  inv.server = "origin-1";
  const auto decoded = DecodeLine(EncodeLine(inv));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Invalidation>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->type, MessageType::kInvalidateServer);
  EXPECT_EQ(back->server, "origin-1");
}

TEST(Wire, BatchInvalidationRoundTrip) {
  BatchInvalidation batch;
  batch.client_id = "alice@5000";
  batch.urls = {"/x y", "/plain", "/x y"};  // duplicates survive the wire
  const auto decoded = DecodeLine(EncodeLine(Message(batch)));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<BatchInvalidation>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->client_id, batch.client_id);
  EXPECT_EQ(back->urls, batch.urls);
}

TEST(Wire, BatchInvalidationRejectsCountMismatch) {
  // Grammar: INVB <client> <n> <url>*n — n must equal the URL field count.
  EXPECT_FALSE(DecodeLine("INVB site 3 /a /b").has_value());   // truncated
  EXPECT_FALSE(DecodeLine("INVB site 1 /a /b").has_value());   // excess
  EXPECT_FALSE(DecodeLine("INVB site 0").has_value());         // empty batch
  EXPECT_FALSE(DecodeLine("INVB site -1 /a").has_value());
  EXPECT_FALSE(DecodeLine("INVB site notanumber /a").has_value());
  EXPECT_FALSE(DecodeLine("INVB site").has_value());
  ASSERT_TRUE(DecodeLine("INVB site 2 /a /b").has_value());
}

TEST(WireSize, BatchInvalidationAmortizesOneHeader) {
  BatchInvalidation batch;
  batch.client_id = "site";
  batch.urls = {"/ab", "/cdef"};
  // One control header for the whole frame, versus one per URL unbatched:
  // header + "site" + "/ab" + "/cdef".
  EXPECT_EQ(WireSize(batch), kControlHeaderBytes + 4 + 3 + 5);
  Invalidation single;
  single.url = "/ab";
  single.client_id = "site";
  EXPECT_LT(WireSize(batch), 2 * WireSize(single));
}

TEST(Wire, NotifyRoundTrip) {
  Notify notify{"/changed.html"};
  const auto decoded = DecodeLine(EncodeLine(notify));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Notify>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->url, "/changed.html");
}

TEST(Wire, DecodeToleratesCrlf) {
  const auto decoded = DecodeLine("GET /a c\r\n");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(std::get_if<Request>(&*decoded), nullptr);
}

// --- piggyback sections -----------------------------------------------------------------

TEST(Wire, GetWithPcvSectionRoundTrip) {
  Request request;
  request.type = MessageType::kGet;
  request.url = "/a";
  request.client_id = "c";
  request.pcv_queries.push_back({"/old one.html", "site a", 17});
  request.pcv_queries.push_back({"/two", "s2", -5});
  const auto decoded = DecodeLine(EncodeLine(request));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Request>(&*decoded);
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->pcv_queries.size(), 2u);
  EXPECT_EQ(back->pcv_queries[0].url, "/old one.html");
  EXPECT_EQ(back->pcv_queries[0].owner, "site a");
  EXPECT_EQ(back->pcv_queries[0].last_modified, 17);
  EXPECT_EQ(back->pcv_queries[1].url, "/two");
  EXPECT_EQ(back->pcv_queries[1].owner, "s2");
  EXPECT_EQ(back->pcv_queries[1].last_modified, -5);
}

TEST(Wire, ImsWithPcvSectionRoundTrip) {
  Request request;
  request.type = MessageType::kIfModifiedSince;
  request.url = "/a";
  request.client_id = "c";
  request.if_modified_since = 99;
  request.pcv_queries.push_back({"/b", "o", 3});
  const auto decoded = DecodeLine(EncodeLine(request));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Request>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->if_modified_since, 99);
  ASSERT_EQ(back->pcv_queries.size(), 1u);
  EXPECT_EQ(back->pcv_queries[0].url, "/b");
}

TEST(Wire, Reply200WithPcvInvAndPsiRoundTrip) {
  Reply reply;
  reply.type = MessageType::kReply200;
  reply.url = "/a";
  reply.body_bytes = 10;
  reply.pcv_invalid.push_back({"/stale", "owner 1"});
  reply.pcv_invalid.push_back({"/also stale", "o2"});
  reply.psi_modified = {"/m1", "/m 2"};
  const auto decoded = DecodeLine(EncodeLine(reply));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Reply>(&*decoded);
  ASSERT_NE(back, nullptr);
  ASSERT_EQ(back->pcv_invalid.size(), 2u);
  EXPECT_EQ(back->pcv_invalid[0].url, "/stale");
  EXPECT_EQ(back->pcv_invalid[0].owner, "owner 1");
  EXPECT_EQ(back->pcv_invalid[1].url, "/also stale");
  ASSERT_EQ(back->psi_modified.size(), 2u);
  EXPECT_EQ(back->psi_modified[1], "/m 2");
}

TEST(Wire, Reply304WithPsiOnlyRoundTrip) {
  Reply reply;
  reply.type = MessageType::kReply304;
  reply.url = "/a";
  reply.lease_until = kNoLease;
  reply.psi_modified = {"/changed"};
  const auto decoded = DecodeLine(EncodeLine(reply));
  ASSERT_TRUE(decoded.has_value());
  const auto* back = std::get_if<Reply>(&*decoded);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->pcv_invalid.empty());
  ASSERT_EQ(back->psi_modified.size(), 1u);
  EXPECT_EQ(back->psi_modified[0], "/changed");
}

TEST(Wire, EmptyPiggybackKeepsHistoricalEncoding) {
  // Messages without piggyback data must stay byte-identical to the
  // pre-extension codec so older peers interoperate.
  Request request;
  request.type = MessageType::kGet;
  request.url = "/a";
  request.client_id = "c";
  EXPECT_EQ(EncodeLine(request), "GET /a c\n");
  Reply reply;
  reply.type = MessageType::kReply304;
  reply.url = "/a";
  reply.last_modified = 1;
  reply.lease_until = 2;
  EXPECT_EQ(EncodeLine(reply), "304 /a 1 2\n");
}

// --- malformed inputs -----------------------------------------------------------------

struct MalformedCase {
  const char* name;
  const char* line;
};

class WireMalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(WireMalformedTest, Rejected) {
  EXPECT_FALSE(DecodeLine(GetParam().line).has_value()) << GetParam().line;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, WireMalformedTest,
    ::testing::Values(
        MalformedCase{"Empty", ""},
        MalformedCase{"UnknownVerb", "FROB /a b"},
        MalformedCase{"GetMissingClient", "GET /a"},
        MalformedCase{"GetExtraField", "GET /a b c"},
        MalformedCase{"ImsMissingTimestamp", "IMS /a b"},
        MalformedCase{"ImsBadTimestamp", "IMS /a b xyz"},
        MalformedCase{"Reply200TooFewFields", "200 /a 1 2 3"},
        MalformedCase{"Reply200BadNumber", "200 /a x 2 3 4"},
        MalformedCase{"Reply304TooMany", "304 /a 1 2 3"},
        MalformedCase{"InvMissingClient", "INV /a"},
        MalformedCase{"InvSrvMissingServer", "INVSRV"},
        MalformedCase{"NotifyExtra", "NOTIFY /a b"},
        MalformedCase{"DoubleSpace", "GET  /a b"},
        MalformedCase{"BadEscape", "GET /a%2 b"},
        MalformedCase{"PcvMissingCount", "GET /a c PCV"},
        MalformedCase{"PcvBadCount", "GET /a c PCV x /u o 1"},
        MalformedCase{"PcvCountOverclaims", "GET /a c PCV 2 /u o 1"},
        MalformedCase{"PcvHostileHugeCount",
                      "GET /a c PCV 18446744073709551615 /u o 1"},
        MalformedCase{"PcvTruncatedItem", "GET /a c PCV 1 /u o"},
        MalformedCase{"PcvBadTimestamp", "GET /a c PCV 1 /u o zz"},
        MalformedCase{"PcvTrailingGarbage", "GET /a c PCV 1 /u o 1 junk"},
        MalformedCase{"PcvWrongMarker", "GET /a c PSI 1 /u"},
        MalformedCase{"PcvOnReply", "304 /a 1 2 PCV 1 /u o 1"},
        MalformedCase{"PcvInvTruncated", "200 /a 1 2 3 4 PCVINV 1 /u"},
        MalformedCase{"PsiCountOverclaims", "304 /a 1 2 PSI 3 /u"},
        MalformedCase{"PsiBeforePcvInv",
                      "304 /a 1 2 PSI 1 /u PCVINV 1 /v o"}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace webcc::net
