// Regenerates the Section 6 numbers: the two-tier lease-augmented
// invalidation scheme on the 8-day SASK trace.
//
// The paper reports that two-tier leases shrink SASK's site lists from the
// simple scheme's tens of thousands of entries to 2,489, and the longest
// per-document list from 1,155 to 473 entries, at a cost of 2,489 extra
// If-Modified-Since requests — far fewer than polling-every-time generates.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/invalidation_table.h"
#include "util/check.h"

using namespace webcc;

namespace {

replay::ReplayMetrics RunSask(core::LeaseConfig lease) {
  const replay::ExperimentSpec spec = replay::Table3Experiments()[1];  // SASK
  const trace::Trace& trace = bench::TraceFor(spec.trace);
  replay::ReplayConfig config =
      replay::MakeReplayConfig(spec, core::Protocol::kInvalidation, trace);
  config.lease = lease;
  return replay::RunReplay(config);
}

// Site-count sweep for the compact table under two-tier leases: every
// fourth site is a repeat viewer (IMS, earns the regular lease, renews once
// a minute later); the rest are GET-only one-timers whose zero-length short
// lease keeps them out of the table entirely. A simple-invalidation control
// (kNone) on the same visit stream shows what the table would hold if every
// requester were remembered forever. Records `twotier_lease_scale` in
// BENCH_farm.json: live entries, measured bytes/entry, renewal count.
void RunTwoTierScaleSweep() {
  std::printf(
      "=== Two-tier lease-scale sweep: 1-in-4 repeat viewers ===\n\n");

  core::LeaseConfig two_tier;
  two_tier.mode = core::LeaseMode::kTwoTier;
  two_tier.duration = kHour;
  two_tier.short_duration = 0;

  const std::size_t kScales[] = {10'000, 100'000, 1'000'000};
  stats::Table table({"Sites", "Entries (two-tier)", "Entries (simple)",
                      "B/entry", "Renewals"});
  std::string json = "{\"repeat_viewer_fraction\": 0.25, \"scales\": [";
  bool first = true;
  for (const std::size_t n_sites : kScales) {
    core::InvalidationTable two_tier_table(two_tier);
    core::InvalidationTable simple_table{core::LeaseConfig{}};  // kNone
    const std::size_t n_urls = n_sites < 1000 ? 1 : n_sites / 1000;
    std::size_t repeat_viewers = 0;
    std::string url;
    std::string site;
    for (std::size_t i = 0; i < n_sites; ++i) {
      url = "/doc/";
      url += std::to_string(i % n_urls);
      site = "site";
      site += std::to_string(i);
      const bool repeat = i % 4 == 0;
      const auto type = repeat ? net::MessageType::kIfModifiedSince
                               : net::MessageType::kGet;
      two_tier_table.Register(url, site, type, /*now=*/0);
      simple_table.Register(url, site, type, /*now=*/0);
      if (repeat) {
        // The repeat viewer comes back: its entry refreshes in place (one
        // entry, one wheel slot) instead of re-registering.
        two_tier_table.Register(url, site, type, kMinute);
        ++repeat_viewers;
      }
    }
    WEBCC_CHECK(two_tier_table.TotalEntries() == repeat_viewers);
    WEBCC_CHECK(two_tier_table.lease_renewals() == repeat_viewers);
    WEBCC_CHECK(simple_table.TotalEntries() == n_sites);

    const double bytes_per_entry =
        static_cast<double>(two_tier_table.MemoryFootprintBytes()) /
        static_cast<double>(two_tier_table.TotalEntries());
    table.AddRow(
        {util::WithCommas(static_cast<std::int64_t>(n_sites)),
         util::WithCommas(
             static_cast<std::int64_t>(two_tier_table.TotalEntries())),
         util::WithCommas(
             static_cast<std::int64_t>(simple_table.TotalEntries())),
         util::Fixed(bytes_per_entry, 1),
         util::WithCommas(
             static_cast<std::int64_t>(two_tier_table.lease_renewals()))});

    if (!first) json += ", ";
    first = false;
    json += "{\"sites\": ";
    json += std::to_string(n_sites);
    json += ", \"entries\": ";
    json += std::to_string(two_tier_table.TotalEntries());
    json += ", \"entries_simple\": ";
    json += std::to_string(simple_table.TotalEntries());
    json += ", \"bytes_per_entry\": ";
    json += util::Fixed(bytes_per_entry, 2);
    json += ", \"lease_renewals\": ";
    json += std::to_string(two_tier_table.lease_renewals());
    json += "}";
  }
  json += "]}";
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "two-tier holds 1-in-4 of the simple scheme's entries at every scale;\n"
      "renewals refresh wheel slots lazily, so a returning viewer costs no\n"
      "second entry.\n");
  bench::WriteBenchJsonKey("BENCH_farm.json", "twotier_lease_scale", json);
}

}  // namespace

int main() {
  std::printf("=== Section 6: two-tier lease-augmented invalidation "
              "(SASK, 14-day lifetime) ===\n\n");

  core::LeaseConfig simple;  // kNone: remember every requester forever

  core::LeaseConfig two_tier;
  two_tier.mode = core::LeaseMode::kTwoTier;
  two_tier.duration = 8 * kDay;  // regular lease spans the trace
  two_tier.short_duration = 0;   // GETs earn nothing

  core::LeaseConfig three_day;
  three_day.mode = core::LeaseMode::kFixed;
  three_day.duration = 3 * kDay;  // the paper's example lease length

  const replay::ReplayMetrics simple_run = RunSask(simple);
  const replay::ReplayMetrics lease_run = RunSask(three_day);
  const replay::ReplayMetrics two_tier_run = RunSask(two_tier);
  const replay::ReplayMetrics polling = bench::RunCell(
      replay::Table3Experiments()[1], core::Protocol::kPollEveryTime);

  stats::Table table({"", "Simple invalidation", "3-day lease",
                      "Two-tier lease"});
  const replay::ReplayMetrics* runs[] = {&simple_run, &lease_run,
                                         &two_tier_run};
  const auto row = [&](const std::string& label, auto get) {
    std::vector<std::string> cells{label};
    for (const auto* run : runs) cells.push_back(get(*run));
    table.AddRow(std::move(cells));
  };

  row("Site-list entries (end)", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.sitelist_entries));
  });
  row("Site-list storage", [](const auto& m) {
    return util::HumanBytes(m.sitelist_storage_bytes);
  });
  row("Max site list (end)", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.sitelist_max_len_end));
  });
  row("Extra IMS (lease renewals)", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.ims_requests));
  });
  row("Invalidations sent", [](const auto& m) {
    return util::WithCommas(
        static_cast<std::int64_t>(m.invalidations_sent));
  });
  row("Total messages", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.total_messages()));
  });
  row("Strong violations", [](const auto& m) {
    return util::WithCommas(static_cast<std::int64_t>(m.strong_violations));
  });
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "paper: two-tier leases cut SASK's site lists to 2,489 entries (max\n"
      "list 1,155 -> 473) for 2,489 extra If-Modified-Since requests.\n"
      "polling-every-time on the same replay sends %s IMS — the two-tier\n"
      "extra validations are a small fraction of that, as the paper argues.\n",
      util::WithCommas(static_cast<std::int64_t>(polling.ims_requests))
          .c_str());
  std::printf("\n");
  RunTwoTierScaleSweep();
  return 0;
}
