// Modifier process and server-driven invalidation fan-out: the write path
// of the invalidation protocol (Section 3.3), its serialized/decoupled and
// multicast send variants (Section 5.3), and the crash-recovery broadcast
// (Section 4). Whether a write owes a fan-out at all is the kernel's
// OnWrite decision; everything here is mechanism.
#include "http/cache_key.h"
#include "obs/event.h"
#include "replay/engine_impl.h"

namespace webcc::replay::detail {

void Engine::ModifierStep() {
  if (mod_cursor_ >= mod_window_end_) {
    ParticipantDone();
    return;
  }
  const trace::ModEvent& event = modifications_[mod_cursor_++];
  const std::string& url = DocPath(event.doc);

  // The touch registers in the file system immediately; for polling, this is
  // the point at which the write is complete. For invalidation the write is
  // in progress from this instant until the fan-out is delivered.
  docs_.Touch(url, event.at);
  mod_times_[url].push_back(event.at);
  mod_log_.Record(event.at, url);
  ++metrics_.modifications_applied;
  obs::Emit(sink_, {.type = obs::EventType::kModification,
                    .at = sim_.now(),
                    .trace_time = event.at,
                    .url = url});
  const bool fan_out = policy_->OnWrite().fan_out_invalidations;
  if (fan_out && !server_down_) ++writes_in_progress_[url];

  if (server_down_) {
    // The accelerator is dead: the modification goes unnoticed until the
    // recovery broadcast. The touch itself persists (the file system
    // survives the crash).
    sim_.After(0, [this] { ModifierStep(); });
    return;
  }

  // The check-in utility notifies the accelerator; detection happens when
  // the notify is processed.
  server_cpu_.Enqueue(config_.server_costs.notify_cpu,
                      [this, fan_out, url, at = event.at] {
                        if (fan_out) {
                          net::Notify notify{url};
                          FanOutInvalidations(accel_.HandleNotify(notify, at),
                                              url,
                                              [this] { ModifierStep(); });
                        } else {
                          ModifierStep();
                        }
                      });
}

void Engine::FanOutInvalidations(std::vector<net::Invalidation> invalidations,
                                 const std::string& url,
                                 std::function<void()> on_complete) {
  WEBCC_CHECK(static_cast<bool>(on_complete));
  if (invalidations.empty()) {
    // No site holds a live-leased copy: the write is trivially complete.
    CompleteWrite(url);
    sim_.After(0, std::move(on_complete));
    return;
  }

  const std::uint64_t mod_id = next_mod_id_++;
  PendingMod& pending = pending_mod_targets_[mod_id];
  pending.url = url;
  pending.remaining = static_cast<int>(invalidations.size());
  pending.first_pending = pending.remaining;
  if (config_.serialized_invalidation) {
    // The check-in blocks until the fan-out lands (the paper's prototype);
    // the modifier resumes only once this write has completed.
    pending.on_complete = std::move(on_complete);
  }

  sim::FifoStation& sender =
      config_.serialized_invalidation ? server_cpu_ : inval_sender_;
  const Time fanout_start = sim_.now();
  Time last_send_done = fanout_start;
  if (config_.multicast_invalidation) {
    // One group send regardless of list length: one CPU charge, one
    // message's bytes; the network fans the copies out.
    ++metrics_.multicast_sends;
    metrics_.invalidations_sent += invalidations.size();
    metrics_.message_bytes += net::WireSize(invalidations.front());
    last_send_done = sender.Enqueue(
        config_.server_costs.invalidation_send_cpu,
        [this, invalidations = std::move(invalidations), mod_id]() mutable {
          for (net::Invalidation& invalidation : invalidations) {
            SendInvalidation(std::move(invalidation), mod_id);
          }
        });
  } else {
    for (net::Invalidation& invalidation : invalidations) {
      ++metrics_.invalidations_sent;
      metrics_.message_bytes += net::WireSize(invalidation);
      last_send_done = sender.Enqueue(
          config_.server_costs.invalidation_send_cpu,
          [this, invalidation = std::move(invalidation), mod_id]() mutable {
            SendInvalidation(std::move(invalidation), mod_id);
          });
    }
  }
  metrics_.invalidation_time_ms.Record(ToMillis(last_send_done - fanout_start));
  if (!config_.serialized_invalidation) sim_.After(0, std::move(on_complete));
}

void Engine::SendInvalidation(net::Invalidation invalidation,
                              std::uint64_t mod_id) {
  sim::NodeId target;
  const bool to_parent =
      config_.hierarchical && invalidation.client_id == "parent";
  if (to_parent) {
    target = ParentNode();
  } else {
    const auto it = pseudo_of_client_.find(invalidation.client_id);
    WEBCC_CHECK_MSG(it != pseudo_of_client_.end(),
                    "invalidation for an unknown client");
    target = clients_[it->second].node;
  }
  const std::uint64_t wire = net::WireSize(invalidation);

  // A send that hits a partition is queued for periodic background retry;
  // the blocking check-in does not wait for it. A reachable target gates
  // the check-in until the message actually arrives (a successful TCP send
  // means the peer acknowledged the bytes).
  bool gate_released = false;
  if (!net_.Reachable(ServerNode(), target) && net_.IsNodeUp(target) &&
      net_.IsNodeUp(ServerNode())) {
    gate_released = true;
    ResolveFirstAttempt(mod_id);
  }

  // TCP with periodic retry across partitions (Section 4's failure
  // handling); a down proxy refuses the connection and is dropped — its
  // recovery path revalidates everything.
  net_.SendReliable(
      ServerNode(), target, wire,
      [this, invalidation, mod_id, gate_released, to_parent] {
        if (!gate_released) ResolveFirstAttempt(mod_id);
        if (to_parent) {
          if (invalidation.type == net::MessageType::kInvalidateUrl) {
            ParentDeliverInvalidation(invalidation.url, mod_id);
          } else {
            ParentDeliverServerNotice(invalidation);
          }
        } else {
          DeliverInvalidation(invalidation, mod_id);
        }
      },
      [this, invalidation, mod_id,
       gate_released](sim::Network::SendResult result, Time done_at) {
        if (result == sim::Network::SendResult::kDelivered) return;
        if (!gate_released) ResolveFirstAttempt(mod_id);
        ++metrics_.invalidations_refused;
        obs::Emit(sink_,
                  {.type = result == sim::Network::SendResult::kGaveUp
                               ? obs::EventType::kInvalidateGaveUp
                               : obs::EventType::kInvalidateRefused,
                   .at = done_at,
                   .url = invalidation.url,
                   .site = invalidation.client_id});
        if (invalidation.type == net::MessageType::kInvalidateServer) {
          FinishRecoveryNotice();
        } else {
          FinishInvalidationTarget(invalidation, mod_id);
        }
      },
      /*max_retries=*/-1);
}

void Engine::DeliverInvalidation(const net::Invalidation& invalidation,
                                 std::uint64_t mod_id) {
  const int index = pseudo_of_client_.at(invalidation.client_id);
  PseudoClient& pc = clients_[index];
  if (invalidation.type == net::MessageType::kInvalidateUrl) {
    // Deleting (rather than marking) frees cache space for fresh documents —
    // the cache-utilization benefit the paper credits invalidation with.
    pc.cache->Erase(
        http::ComposeCacheKey(invalidation.url, invalidation.client_id));
    ++metrics_.invalidations_delivered;
    obs::Emit(sink_, {.type = obs::EventType::kInvalidateDelivered,
                      .at = sim_.now(),
                      .url = invalidation.url,
                      .site = invalidation.client_id});
    FinishInvalidationTarget(invalidation, mod_id);
  } else {
    // Server-address invalidation: every entry this real client holds from
    // that server becomes questionable.
    pc.cache->MarkQuestionableWhere(
        [&invalidation](const http::CacheEntry& entry) {
          return entry.owner == invalidation.client_id;
        });
    FinishRecoveryNotice();
  }
}

void Engine::FinishRecoveryNotice() {
  if (recovery_notices_pending_ > 0 && --recovery_notices_pending_ == 0) {
    // Every ever-seen site has been told (or is dead and will revalidate on
    // its own recovery): the downtime writes are as complete as they get.
    write_gap_active_ = false;
  }
}

void Engine::ResolveFirstAttempt(std::uint64_t mod_id) {
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  if (--it->second.first_pending > 0) return;
  std::function<void()> on_complete = std::move(it->second.on_complete);
  it->second.on_complete = nullptr;
  if (it->second.remaining <= 0) pending_mod_targets_.erase(it);
  if (on_complete) on_complete();
}

void Engine::FinishInvalidationTarget(const net::Invalidation& invalidation,
                                      std::uint64_t mod_id) {
  (void)invalidation;
  const auto it = pending_mod_targets_.find(mod_id);
  if (it == pending_mod_targets_.end()) return;
  if (--it->second.remaining > 0) return;
  // Write complete: all invalidations delivered (or their targets dead).
  CompleteWrite(it->second.url);
  if (it->second.first_pending <= 0) pending_mod_targets_.erase(it);
}

void Engine::CompleteWrite(const std::string& url) {
  const auto it = writes_in_progress_.find(url);
  if (it != writes_in_progress_.end() && --it->second <= 0) {
    writes_in_progress_.erase(it);
  }
}

void Engine::ServerRecover() {
  std::vector<net::Invalidation> notices = accel_.Recover();
  recovery_notices_pending_ = static_cast<int>(notices.size());
  if (notices.empty()) write_gap_active_ = false;
  sim::FifoStation& sender =
      config_.serialized_invalidation ? server_cpu_ : inval_sender_;
  for (net::Invalidation& notice : notices) {
    ++metrics_.invsrv_sent;
    metrics_.message_bytes += net::WireSize(notice);
    sender.Enqueue(config_.server_costs.invalidation_send_cpu,
                   [this, notice = std::move(notice)]() mutable {
                     SendInvalidation(std::move(notice), 0);
                   });
  }
}

}  // namespace webcc::replay::detail
