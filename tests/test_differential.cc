// Differential harness: the replay engine and the live (real-TCP) stack
// must make identical consistency decisions, because both dispatch through
// the core/consistency kernel.
//
// One scripted request/write sequence is driven through (a) a replay of an
// equivalent synthetic trace and (b) a localhost LiveServer + LiveProxy
// pair, for every protocol × lease mode. Both runs record their structured
// trace events; after normalizing away the things that legitimately differ
// (clock values, the live stack's "@port" client-id suffix, timing-only
// event types), the two decision traces must be event-for-event identical.
//
// The script pins one step per replay lockstep interval so the global event
// order in the simulator matches the sequential order of the live script,
// and the TTL configurations are chosen so that trace-time and wall-time
// decisions coincide (script spans ≪ min_ttl, or ttl == 0 for PCV).
// Both stacks honor WEBCC_TEST_SHARDS (default 1): the CI shard-sweep job
// re-runs this whole suite with the accelerator split across several
// consistent-hashed shards, asserting the decision trace is shard-count
// invariant by construction, not by luck.
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy.h"
#include "live/live_proxy.h"
#include "live/live_server.h"
#include "obs/event.h"
#include "obs/trace_sink.h"
#include "replay/config.h"
#include "replay/engine.h"
#include "trace/record.h"

namespace webcc {
namespace {

using core::LeaseMode;
using core::Protocol;

// --- normalized decision events ---------------------------------------------

struct NormEvent {
  obs::EventType type = obs::EventType::kRunBegin;
  std::string url;
  std::string site;
  std::int64_t detail = 0;

  bool operator==(const NormEvent& other) const {
    return type == other.type && url == other.url && site == other.site &&
           detail == other.detail;
  }
};

std::ostream& operator<<(std::ostream& out, const NormEvent& event) {
  return out << obs::EventTypeName(event.type) << " url=" << event.url
             << " site=" << event.site << " detail=" << event.detail;
}

// Strips the live stack's "@port" callback suffix so sites compare equal to
// the replay's bare client names. Only an all-digit suffix is stripped —
// a client name containing '@' stays intact.
std::string StripCallbackPort(std::string_view site) {
  const std::size_t at = site.rfind('@');
  if (at == std::string_view::npos || at + 1 == site.size()) {
    return std::string(site);
  }
  for (std::size_t i = at + 1; i < site.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(site[i])) == 0) {
      return std::string(site);
    }
  }
  return std::string(site.substr(0, at));
}

// Records the protocol-decision subset of the event stream in arrival
// order, plus cache evictions: given identical request sequences both
// stacks must pick identical victims (the eviction kernel's decisions are
// clock-independent under the script's TTL configurations). Purely
// timing-dependent types (stale-serve accounting, run framing, lease-expiry
// pruning) stay excluded: they either exist in only one stack or depend on
// clock values.
class RecordingSink final : public obs::TraceSink {
 public:
  void Emit(const obs::TraceEvent& event) override {
    std::int64_t detail = 0;
    switch (event.type) {
      case obs::EventType::kImsSent:        // lease_renewal flag
      case obs::EventType::kRequestServed:  // ServeKind
      case obs::EventType::kEviction:       // victim rule / tier detail code
        detail = event.detail;
        break;
      case obs::EventType::kGetSent:
      case obs::EventType::kReply200:
      case obs::EventType::kReply304:
      case obs::EventType::kLeaseGrant:  // detail is a clock value: dropped
      case obs::EventType::kNotify:
      case obs::EventType::kInvalidateGenerated:
      case obs::EventType::kInvalidateDelivered:
      case obs::EventType::kModification:
        break;
      default:
        return;
    }
    const std::scoped_lock lock(mu_);
    events_.push_back(NormEvent{event.type, std::string(event.url),
                                StripCallbackPort(event.site), detail});
  }
  void WriteRaw(std::string_view) override {}

  std::vector<NormEvent> Take() {
    const std::scoped_lock lock(mu_);
    return std::move(events_);
  }

 private:
  std::mutex mu_;
  std::vector<NormEvent> events_;
};

// Accelerator shard count for both stacks, from WEBCC_TEST_SHARDS.
std::uint32_t TestShards() {
  const char* env = std::getenv("WEBCC_TEST_SHARDS");
  if (env == nullptr) return 1;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<std::uint32_t>(value) : 1;
}

// --- the scripted sequence ---------------------------------------------------

struct Combo {
  Protocol protocol;
  LeaseMode lease;
  http::ReplacementPolicy policy = http::ReplacementPolicy::kExpiredFirstLru;
  // 0 keeps each stack's roomy default (no eviction pressure); the
  // eviction combos shrink it below kSizeA + kSizeB so every policy has
  // victims to choose.
  std::uint64_t cache_bytes = 0;
  bool tiered = false;

  http::TierConfig tier() const {
    http::TierConfig tier;
    if (tiered) {
      tier.tier2_capacity_bytes = 70000;  // holds one /b plus an /a
      tier.promotion_hits = 2;
    }
    return tier;
  }
};

struct Step {
  enum Kind { kFetch, kTouch };
  Kind kind;
  const char* client;  // kFetch only
  const char* url;
};

// Exercises: cold miss, repeat hit, per-client namespacing, a write with
// (protocol-dependent) fan-out, post-write refetch, a second document whose
// fetch carries the PCV/PSI piggybacks, and a second write.
constexpr Step kScript[] = {
    {Step::kFetch, "alice", "/a"}, {Step::kFetch, "alice", "/a"},
    {Step::kFetch, "bob", "/a"},   {Step::kTouch, nullptr, "/a"},
    {Step::kFetch, "alice", "/a"}, {Step::kFetch, "alice", "/b"},
    {Step::kFetch, "bob", "/a"},   {Step::kTouch, nullptr, "/b"},
    {Step::kFetch, "alice", "/b"}, {Step::kFetch, "bob", "/b"},
    {Step::kFetch, "alice", "/a"},
};

constexpr std::uint64_t kSizeA = 4096;
constexpr std::uint64_t kSizeB = 65536;

// TTL configuration under which trace-time (replay) and wall-time (live)
// decisions coincide: the whole script spans far less than min_ttl, so a
// TTL-governed copy is fresh in both stacks — except for PCV, which runs
// with ttl == 0 so every copy immediately becomes a piggyback candidate in
// both stacks.
core::AdaptiveTtlConfig TtlFor(Protocol protocol) {
  core::AdaptiveTtlConfig ttl;
  if (protocol == Protocol::kPiggybackValidation) {
    ttl.factor = 0.0;
    ttl.min_ttl = 0;
  } else {
    ttl.min_ttl = kHour;
  }
  return ttl;
}

// Leases long against the script (fixed / two-tier regular tier) or
// instantly lapsing (two-tier GET tier), so both clocks agree on every
// active/expired judgement.
core::LeaseConfig LeaseFor(LeaseMode mode) {
  core::LeaseConfig lease;
  lease.mode = mode;
  lease.duration = kHour;
  lease.short_duration = 0;
  return lease;
}

// --- live run ----------------------------------------------------------------

template <typename Predicate>
bool WaitFor(Predicate predicate,
             std::chrono::milliseconds budget = std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

std::vector<NormEvent> RunLive(const Combo& combo) {
  const Protocol protocol = combo.protocol;
  RecordingSink sink;

  live::LiveServer::Options server_options;
  server_options.protocol = protocol;
  server_options.lease = LeaseFor(combo.lease);
  server_options.shards = TestShards();
  server_options.trace_sink = &sink;
  live::LiveServer server(server_options);
  EXPECT_TRUE(server.Start());
  server.AddDocument("/a", kSizeA);
  server.AddDocument("/b", kSizeB);

  live::LiveProxy::Options proxy_options;
  proxy_options.server_port = server.port();
  proxy_options.protocol = protocol;
  proxy_options.ttl = TtlFor(protocol);
  proxy_options.eviction_policy = combo.policy;
  if (combo.cache_bytes > 0) proxy_options.cache_bytes = combo.cache_bytes;
  proxy_options.cache_tier = combo.tier();
  proxy_options.trace_sink = &sink;
  live::LiveProxy proxy(proxy_options);
  EXPECT_TRUE(proxy.Start());

  for (const Step& step : kScript) {
    if (step.kind == Step::kFetch) {
      EXPECT_TRUE(proxy.Fetch(step.client, step.url).ok)
          << step.client << " " << step.url;
    } else {
      const std::uint64_t before = proxy.invalidations_received();
      const std::size_t pushed = server.TouchDocument(step.url);
      // Deliveries are asynchronous; the next step must observe them (the
      // replay's serialized fan-out completes within the touch interval).
      EXPECT_TRUE(WaitFor([&] {
        return proxy.invalidations_received() >= before + pushed;
      })) << "invalidation for " << step.url << " never arrived";
    }
  }

  proxy.Stop();
  server.Stop();
  return sink.Take();
}

// --- replay run --------------------------------------------------------------

std::vector<NormEvent> RunReplayScript(const Combo& combo) {
  const Protocol protocol = combo.protocol;
  // One step per lockstep interval: the coordinator barrier makes the
  // simulator's global event order equal the script order.
  constexpr Time kStep = kMinute;

  trace::Trace trace;
  trace.name = "differential";
  trace.documents = {{"/a", kSizeA}, {"/b", kSizeB}};
  trace.clients = {"alice", "bob"};

  std::vector<trace::ModEvent> modifications;
  Time at = 0;
  for (const Step& step : kScript) {
    at += kStep;
    const trace::DocId doc = step.url == std::string("/a") ? 0 : 1;
    if (step.kind == Step::kFetch) {
      const trace::ClientId client = step.client == std::string("alice") ? 0 : 1;
      trace.records.push_back({at, client, doc});
    } else {
      modifications.push_back({at, doc});
    }
  }
  trace.duration = at + kStep;
  EXPECT_EQ(trace.Validate(), "");

  RecordingSink sink;
  replay::ReplayConfig config;
  config.protocol = protocol;
  config.trace = &trace;
  config.explicit_modifications = modifications;
  config.num_pseudo_clients = 1;  // the live side is one shared proxy
  config.ttl = TtlFor(protocol);
  config.lease = LeaseFor(combo.lease);
  config.eviction_policy = combo.policy;
  if (combo.cache_bytes > 0) config.proxy_cache_bytes = combo.cache_bytes;
  config.proxy_tier = combo.tier();
  config.accelerator_shards = TestShards();
  config.lockstep_interval = kStep;
  config.fixed_initial_age = 0;  // documents born at t=0, as in live
  config.trace_sink = &sink;
  replay::RunReplay(config);
  return sink.Take();
}

// --- the differential assertion ---------------------------------------------

std::string ComboName(const ::testing::TestParamInfo<Combo>& info) {
  std::string name = core::ToString(info.param.protocol);
  name += "_";
  name += core::ToString(info.param.lease);
  if (info.param.cache_bytes > 0) {
    name += "_";
    name += http::eviction::ToString(info.param.policy);
    name += info.param.tiered ? "_tiered" : "_flat";
  }
  for (char& c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return name;
}

class DifferentialTest : public ::testing::TestWithParam<Combo> {};

TEST_P(DifferentialTest, ReplayAndLiveStacksDecideIdentically) {
  const std::vector<NormEvent> replayed = RunReplayScript(GetParam());
  const std::vector<NormEvent> lived = RunLive(GetParam());

  // The script exercises real traffic: an empty trace means the harness is
  // broken, not that the stacks agree.
  ASSERT_FALSE(replayed.empty());

  const std::size_t common = std::min(replayed.size(), lived.size());
  for (std::size_t i = 0; i < common; ++i) {
    ASSERT_EQ(replayed[i], lived[i]) << "first divergence at event " << i;
  }
  ASSERT_EQ(replayed.size(), lived.size());
}

constexpr Protocol kAllProtocols[] = {
    Protocol::kAdaptiveTtl,          Protocol::kPollEveryTime,
    Protocol::kInvalidation,         Protocol::kPiggybackValidation,
    Protocol::kPiggybackInvalidation};

std::vector<Combo> AllCombos() {
  std::vector<Combo> combos;
  // Protocol × lease sweep at the roomy default capacity (no evictions).
  for (const Protocol protocol : kAllProtocols) {
    for (const LeaseMode lease :
         {LeaseMode::kNone, LeaseMode::kFixed, LeaseMode::kTwoTier}) {
      combos.push_back(Combo{protocol, lease});
    }
  }
  // Protocol × policy × tiering sweep under eviction pressure: the cache
  // cannot hold /a plus /b, so every Insert past the first few displaces a
  // victim, and both stacks must displace the same one (kEviction events
  // are part of the compared stream).
  for (const Protocol protocol : kAllProtocols) {
    for (const http::ReplacementPolicy policy :
         {http::ReplacementPolicy::kLru,
          http::ReplacementPolicy::kExpiredFirstLru,
          http::ReplacementPolicy::kGds}) {
      for (const bool tiered : {false, true}) {
        Combo combo{protocol, LeaseMode::kNone};
        combo.policy = policy;
        combo.cache_bytes = 66000;  // < kSizeA + kSizeB
        combo.tiered = tiered;
        combos.push_back(combo);
      }
    }
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(AllProtocolsAndLeases, DifferentialTest,
                         ::testing::ValuesIn(AllCombos()), ComboName);

}  // namespace
}  // namespace webcc
