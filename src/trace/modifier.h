// Modifier-process schedule.
//
// The paper's traces carry no modification history, so a modifier process on
// the pseudo-server touches a uniformly random file every N seconds; this
// yields a geometric (memoryless) per-file lifetime with mean
// N * num_documents. Given a target mean lifetime the schedule derives N
// exactly as the paper does.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.h"
#include "util/rng.h"

namespace webcc::trace {

struct ModEvent {
  Time at = 0;
  DocId doc = 0;
};

struct ModifierConfig {
  Time duration = kDay;
  std::uint32_t num_documents = 1000;
  // Target mean file lifetime (e.g. 50 days); the touch interval is
  // mean_lifetime / num_documents.
  Time mean_lifetime = 50 * kDay;
  std::uint64_t seed = 2;
};

// One touch every `mean_lifetime / num_documents`, each picking a uniform
// random document; sorted by time, all within [interval, duration].
std::vector<ModEvent> GenerateModifierSchedule(const ModifierConfig& config);

// The touch interval N implied by a config (exposed for tests/benches).
Time TouchInterval(const ModifierConfig& config);

// Expected number of touches in the configured duration.
std::uint64_t ExpectedTouchCount(const ModifierConfig& config);

}  // namespace webcc::trace
