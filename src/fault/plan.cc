#include "fault/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/mini_json.h"
#include "util/rng.h"

namespace webcc::fault {
namespace {

struct KindName {
  FaultKind kind;
  std::string_view name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kProxyCrash, "proxy_crash"},
    {FaultKind::kServerCrash, "server_crash"},
    {FaultKind::kPartition, "partition"},
    {FaultKind::kLinkFault, "link_fault"},
};

// Formats a Time as fractional seconds with microsecond precision — the
// exact inverse of SecondsToTime below, so plans round-trip losslessly.
std::string TimeToSeconds(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", ToSeconds(t));
  return buf;
}

Time SecondsToTime(double seconds) {
  return static_cast<Time>(std::llround(seconds * 1e6));
}

std::string DoubleToJson(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

// The fixed dialect ToJson emits parses with the shared mini-JSON parser
// (util/mini_json.h); goldens are written in the same dialect.
using Parser = util::MiniJsonParser;

bool ParseEventObject(Parser& p, FaultEvent& event) {
  if (!p.Consume('{')) return false;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return false;
    first = false;
    std::string key;
    if (!p.ParseString(key)) return false;
    if (!p.Consume(':')) return false;
    if (key == "kind") {
      std::string name;
      if (!p.ParseString(name)) return false;
      if (!ParseFaultKindName(name, event.kind)) {
        return p.Fail("unknown fault kind '" + name + "'");
      }
    } else if (key == "at_s") {
      double v = 0;
      if (!p.ParseNumber(v)) return false;
      event.at = SecondsToTime(v);
    } else if (key == "duration_s") {
      double v = 0;
      if (!p.ParseNumber(v)) return false;
      event.duration = SecondsToTime(v);
    } else if (key == "target") {
      double v = 0;
      if (!p.ParseNumber(v)) return false;
      event.target = static_cast<int>(v);
    } else if (key == "drop") {
      if (!p.ParseNumber(event.drop)) return false;
    } else if (key == "duplicate") {
      if (!p.ParseNumber(event.duplicate)) return false;
    } else if (key == "extra_delay_s") {
      double v = 0;
      if (!p.ParseNumber(v)) return false;
      event.extra_delay = SecondsToTime(v);
    } else {
      return p.Fail("unknown event key '" + key + "'");
    }
  }
  return p.Consume('}');
}

bool ParsePlanBody(Parser& p, FaultPlan& plan,
                   std::map<std::string, std::string>* expect) {
  if (!p.Consume('{')) return false;
  bool first = true;
  while (!p.Peek('}')) {
    if (!first && !p.Consume(',')) return false;
    first = false;
    std::string key;
    if (!p.ParseString(key)) return false;
    if (!p.Consume(':')) return false;
    if (key == "name") {
      if (!p.ParseString(plan.name)) return false;
    } else if (key == "events") {
      if (!p.Consume('[')) return false;
      bool first_event = true;
      while (!p.Peek(']')) {
        if (!first_event && !p.Consume(',')) return false;
        first_event = false;
        FaultEvent event;
        if (!ParseEventObject(p, event)) return false;
        plan.events.push_back(event);
      }
      if (!p.Consume(']')) return false;
    } else if (key == "expect" && expect != nullptr) {
      if (!p.Consume('{')) return false;
      bool first_pair = true;
      while (!p.Peek('}')) {
        if (!first_pair && !p.Consume(',')) return false;
        first_pair = false;
        std::string metric;
        if (!p.ParseString(metric)) return false;
        if (!p.Consume(':')) return false;
        std::string raw;
        if (!p.ParseRawValue(raw)) return false;
        (*expect)[metric] = raw;
      }
      if (!p.Consume('}')) return false;
    } else {
      return p.Fail("unknown plan key '" + key + "'");
    }
  }
  if (!p.Consume('}')) return false;
  if (!p.AtEnd()) return p.Fail("trailing text after plan");
  return true;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) return entry.name;
  }
  return "unknown";
}

bool ParseFaultKindName(std::string_view name, FaultKind& out) {
  for (const KindName& entry : kKindNames) {
    if (entry.name == name) {
      out = entry.kind;
      return true;
    }
  }
  return false;
}

void Canonicalize(FaultPlan& plan) {
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.target < b.target;
                   });
}

FaultPlan Random(const RandomPlanConfig& config, std::uint64_t seed) {
  util::Rng rng(seed);
  FaultPlan plan;
  plan.name = "random_seed_" + std::to_string(seed);
  const auto draw_start = [&] {
    return static_cast<Time>(
        rng.NextBelow(static_cast<std::uint64_t>(config.horizon)));
  };
  const auto draw_duration = [&] {
    return config.min_duration +
           static_cast<Time>(rng.NextBelow(static_cast<std::uint64_t>(
               config.max_duration - config.min_duration + 1)));
  };
  const auto draw_target = [&] {
    return static_cast<int>(
        rng.NextBelow(static_cast<std::uint64_t>(config.clients)));
  };
  for (int i = 0; i < config.crash_events; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kProxyCrash;
    event.at = draw_start();
    event.duration = draw_duration();
    event.target = draw_target();
    plan.events.push_back(event);
  }
  if (config.allow_server_crash && rng.NextBool(0.5)) {
    FaultEvent event;
    event.kind = FaultKind::kServerCrash;
    event.at = draw_start();
    event.duration = draw_duration();
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.partition_events; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kPartition;
    event.at = draw_start();
    event.duration = draw_duration();
    // One partition in five cuts every proxy-server link at once.
    event.target = rng.NextBool(0.2) ? -1 : draw_target();
    plan.events.push_back(event);
  }
  for (int i = 0; i < config.link_windows; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kLinkFault;
    event.at = draw_start();
    event.duration = draw_duration();
    event.target = rng.NextBool(0.3) ? -1 : draw_target();
    event.drop = rng.NextDouble() * config.max_drop;
    event.duplicate = rng.NextDouble() * config.max_duplicate;
    if (rng.NextBool(0.5)) {
      event.extra_delay = static_cast<Time>(rng.NextBelow(
          static_cast<std::uint64_t>(config.max_extra_delay + 1)));
    }
    plan.events.push_back(event);
  }
  Canonicalize(plan);
  return plan;
}

std::string ToJson(const FaultPlan& plan) {
  FaultPlan canonical = plan;
  Canonicalize(canonical);
  std::string out = "{\n  \"name\": \"" + canonical.name + "\",\n";
  out += "  \"events\": [";
  for (std::size_t i = 0; i < canonical.events.size(); ++i) {
    const FaultEvent& event = canonical.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": \"";
    out += FaultKindName(event.kind);
    out += "\", \"at_s\": " + TimeToSeconds(event.at);
    out += ", \"target\": " + std::to_string(event.target);
    out += ", \"duration_s\": " + TimeToSeconds(event.duration);
    if (event.kind == FaultKind::kLinkFault) {
      out += ", \"drop\": " + DoubleToJson(event.drop);
      out += ", \"duplicate\": " + DoubleToJson(event.duplicate);
      out += ", \"extra_delay_s\": " + TimeToSeconds(event.extra_delay);
    }
    out += "}";
  }
  out += canonical.events.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool FromJson(std::string_view text, FaultPlan& out, std::string& error) {
  Parser parser(text);
  FaultPlan plan;
  if (!ParsePlanBody(parser, plan, nullptr)) {
    error = parser.error();
    return false;
  }
  Canonicalize(plan);
  out = std::move(plan);
  return true;
}

bool ParseFaultPlanFile(std::string_view text, FaultPlanFile& out,
                        std::string& error) {
  Parser parser(text);
  FaultPlanFile file;
  if (!ParsePlanBody(parser, file.plan, &file.expect)) {
    error = parser.error();
    return false;
  }
  Canonicalize(file.plan);
  out = std::move(file);
  return true;
}

}  // namespace webcc::fault
