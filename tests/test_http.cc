// Unit tests for http/: document store, origin server, proxy cache.
#include <gtest/gtest.h>

#include <string>

#include "http/document_store.h"
#include "http/origin.h"
#include "http/proxy_cache.h"

namespace webcc::http {
namespace {

// --- DocumentStore ---------------------------------------------------------------

TEST(DocumentStore, AddAndFind) {
  DocumentStore store;
  EXPECT_TRUE(store.Add("/a", 100, 5));
  const Document* doc = store.Find("/a");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->size_bytes, 100u);
  EXPECT_EQ(doc->last_modified, 5);
  EXPECT_EQ(doc->version, 1u);
}

TEST(DocumentStore, DuplicateAddRejected) {
  DocumentStore store;
  EXPECT_TRUE(store.Add("/a", 100, 0));
  EXPECT_FALSE(store.Add("/a", 200, 0));
  EXPECT_EQ(store.Find("/a")->size_bytes, 100u);
}

TEST(DocumentStore, FindMissingReturnsNull) {
  DocumentStore store;
  EXPECT_EQ(store.Find("/missing"), nullptr);
}

TEST(DocumentStore, TouchBumpsVersionAndMtime) {
  DocumentStore store;
  store.Add("/a", 100, 0);
  EXPECT_TRUE(store.Touch("/a", 77));
  const Document* doc = store.Find("/a");
  EXPECT_EQ(doc->version, 2u);
  EXPECT_EQ(doc->last_modified, 77);
  EXPECT_TRUE(store.Touch("/a", 99));
  EXPECT_EQ(doc->version, 3u);
}

TEST(DocumentStore, TouchUnknownFails) {
  DocumentStore store;
  EXPECT_FALSE(store.Touch("/nope", 1));
}

TEST(DocumentStore, PointersStableAcrossAdds) {
  DocumentStore store;
  store.Add("/first", 1, 0);
  const Document* first = store.Find("/first");
  for (int i = 0; i < 1000; ++i) {
    store.Add("/doc" + std::to_string(i), 1, 0);
  }
  EXPECT_EQ(store.Find("/first"), first);
}

TEST(DocumentStore, TotalBytesAccumulates) {
  DocumentStore store;
  store.Add("/a", 100, 0);
  store.Add("/b", 250, 0);
  EXPECT_EQ(store.total_bytes(), 350u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(DocumentStore, NegativeInitialMtimeAllowed) {
  DocumentStore store;
  store.Add("/old", 10, -50 * kDay);
  EXPECT_EQ(store.Find("/old")->last_modified, -50 * kDay);
}

// --- OriginServer -----------------------------------------------------------------

net::Request MakeGet(const std::string& url) {
  net::Request request;
  request.type = net::MessageType::kGet;
  request.url = url;
  request.client_id = "c";
  return request;
}

net::Request MakeIms(const std::string& url, Time since) {
  net::Request request;
  request.type = net::MessageType::kIfModifiedSince;
  request.url = url;
  request.client_id = "c";
  request.if_modified_since = since;
  return request;
}

TEST(OriginServer, GetReturns200WithBody) {
  DocumentStore store;
  store.Add("/a", 4096, 10);
  OriginServer origin(store);
  const auto reply = origin.Handle(MakeGet("/a"), 100);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::kReply200);
  EXPECT_EQ(reply->body_bytes, 4096u);
  EXPECT_EQ(reply->last_modified, 10);
  EXPECT_EQ(reply->version, 1u);
}

TEST(OriginServer, UnknownUrlIsNullopt) {
  DocumentStore store;
  OriginServer origin(store);
  EXPECT_FALSE(origin.Handle(MakeGet("/missing"), 0).has_value());
}

TEST(OriginServer, ImsFreshReturns304) {
  DocumentStore store;
  store.Add("/a", 4096, 10);
  OriginServer origin(store);
  const auto reply = origin.Handle(MakeIms("/a", 10), 100);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::kReply304);
  EXPECT_EQ(reply->body_bytes, 0u);
}

TEST(OriginServer, ImsStaleReturns200) {
  DocumentStore store;
  store.Add("/a", 4096, 10);
  store.Touch("/a", 50);
  OriginServer origin(store);
  const auto reply = origin.Handle(MakeIms("/a", 10), 100);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::kReply200);
  EXPECT_EQ(reply->version, 2u);
  EXPECT_EQ(reply->last_modified, 50);
}

TEST(OriginServer, ImsWithLaterTimestampStill304) {
  // A client clock ahead of the server must not force a transfer.
  DocumentStore store;
  store.Add("/a", 100, 10);
  OriginServer origin(store);
  const auto reply = origin.Handle(MakeIms("/a", 999), 1000);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, net::MessageType::kReply304);
}

TEST(OriginServer, LeaseLeftUnstamped) {
  DocumentStore store;
  store.Add("/a", 100, 0);
  OriginServer origin(store);
  EXPECT_EQ(origin.Handle(MakeGet("/a"), 0)->lease_until, net::kNoLease);
}

// --- ProxyCache -------------------------------------------------------------------

CacheEntry MakeEntry(const std::string& key, std::uint64_t size,
                     Time ttl_expires = kNeverExpires) {
  CacheEntry entry;
  entry.key = key;
  entry.url = key.substr(0, key.find('@'));
  entry.owner = key.substr(key.find('@') + 1);
  entry.size_bytes = size;
  entry.version = 1;
  entry.ttl_expires = ttl_expires;
  return entry;
}

TEST(ProxyCache, InsertAndLookup) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  CacheEntry* entry = cache.Lookup("/a@c");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->size_bytes, 100u);
  EXPECT_EQ(cache.bytes_used(), 100u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ProxyCache, LookupMissingIsNull) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  EXPECT_EQ(cache.Lookup("/nope@c"), nullptr);
}

TEST(ProxyCache, InsertReplacesExisting) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  CacheEntry bigger = MakeEntry("/a@c", 300);
  bigger.version = 2;
  cache.Insert(bigger, 0);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes_used(), 300u);
  EXPECT_EQ(cache.Lookup("/a@c")->version, 2u);
}

TEST(ProxyCache, EvictsLruWhenFull) {
  ProxyCache cache(300, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  cache.Insert(MakeEntry("/b@c", 100), 0);
  cache.Insert(MakeEntry("/c@c", 100), 0);
  cache.Lookup("/a@c");                      // touch /a: /b is now LRU
  cache.Insert(MakeEntry("/d@c", 100), 0);   // evicts /b
  EXPECT_NE(cache.Peek("/a@c"), nullptr);
  EXPECT_EQ(cache.Peek("/b@c"), nullptr);
  EXPECT_NE(cache.Peek("/c@c"), nullptr);
  EXPECT_NE(cache.Peek("/d@c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ProxyCache, PeekDoesNotPromote) {
  ProxyCache cache(200, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  cache.Insert(MakeEntry("/b@c", 100), 0);
  cache.Peek("/a@c");                       // must NOT promote /a
  cache.Insert(MakeEntry("/c@c", 100), 0);  // evicts /a (still LRU)
  EXPECT_EQ(cache.Peek("/a@c"), nullptr);
  EXPECT_NE(cache.Peek("/b@c"), nullptr);
}

TEST(ProxyCache, ObjectLargerThanCapacityNotCached) {
  ProxyCache cache(100, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/big@c", 5000), 0);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ProxyCache, ExpiredFirstEvictsExpiredBeforeLru) {
  ProxyCache cache(300, ReplacementPolicy::kExpiredFirstLru);
  cache.Insert(MakeEntry("/fresh@c", 100, /*ttl=*/1000), 0);
  cache.Insert(MakeEntry("/expired@c", 100, /*ttl=*/10), 0);
  cache.Insert(MakeEntry("/strong@c", 100), 0);
  cache.Lookup("/expired@c");  // most recently used, but expired
  // At now=500 the expired entry must go first despite being MRU.
  cache.Insert(MakeEntry("/new@c", 100), 500);
  EXPECT_EQ(cache.Peek("/expired@c"), nullptr);
  EXPECT_NE(cache.Peek("/fresh@c"), nullptr);
  EXPECT_NE(cache.Peek("/strong@c"), nullptr);
  EXPECT_EQ(cache.stats().expired_evictions, 1u);
}

TEST(ProxyCache, ExpiredFirstFallsBackToLruWhenNoneExpired) {
  ProxyCache cache(200, ReplacementPolicy::kExpiredFirstLru);
  cache.Insert(MakeEntry("/a@c", 100, /*ttl=*/100000), 0);
  cache.Insert(MakeEntry("/b@c", 100, /*ttl=*/100000), 0);
  cache.Insert(MakeEntry("/c@c", 100, /*ttl=*/100000), 50);
  EXPECT_EQ(cache.Peek("/a@c"), nullptr);  // plain LRU victim
  EXPECT_EQ(cache.stats().expired_evictions, 0u);
}

TEST(ProxyCache, SetTtlExpiryReindexes) {
  ProxyCache cache(200, ReplacementPolicy::kExpiredFirstLru);
  cache.Insert(MakeEntry("/a@c", 100, /*ttl=*/10), 0);
  CacheEntry* entry = cache.Lookup("/a@c");
  ASSERT_NE(entry, nullptr);
  // Revalidation extends the TTL; the old heap record must not evict it.
  cache.SetTtlExpiry(*entry, 100000);
  cache.Insert(MakeEntry("/b@c", 100, /*ttl=*/100000), 500);
  cache.Insert(MakeEntry("/c@c", 100, /*ttl=*/100000), 500);
  // /a had to be evicted by LRU (not as expired) or survive; it must not
  // have been evicted via the stale ttl=10 record.
  EXPECT_EQ(cache.stats().expired_evictions, 0u);
}

TEST(ProxyCache, EraseRemoves) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  EXPECT_TRUE(cache.Erase("/a@c"));
  EXPECT_FALSE(cache.Erase("/a@c"));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_used(), 0u);
  EXPECT_EQ(cache.stats().erased, 1u);
}

TEST(ProxyCache, MarkAllQuestionable) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@c", 100), 0);
  cache.Insert(MakeEntry("/b@c", 100), 0);
  cache.MarkAllQuestionable();
  EXPECT_TRUE(cache.Peek("/a@c")->questionable);
  EXPECT_TRUE(cache.Peek("/b@c")->questionable);
}

TEST(ProxyCache, MarkQuestionableWhereFilters) {
  ProxyCache cache(1000, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/a@alice", 100), 0);
  cache.Insert(MakeEntry("/a@bob", 100), 0);
  const std::size_t marked = cache.MarkQuestionableWhere(
      [](const CacheEntry& entry) { return entry.owner == "alice"; });
  EXPECT_EQ(marked, 1u);
  EXPECT_TRUE(cache.Peek("/a@alice")->questionable);
  EXPECT_FALSE(cache.Peek("/a@bob")->questionable);
}

TEST(ProxyCache, ZeroSizeEntriesAllowed) {
  ProxyCache cache(100, ReplacementPolicy::kLru);
  cache.Insert(MakeEntry("/empty@c", 0), 0);
  EXPECT_NE(cache.Peek("/empty@c"), nullptr);
  EXPECT_EQ(cache.bytes_used(), 0u);
}

TEST(ProxyCache, ManyInsertionsStayWithinCapacity) {
  ProxyCache cache(1000, ReplacementPolicy::kExpiredFirstLru);
  for (int i = 0; i < 500; ++i) {
    cache.Insert(MakeEntry("/doc" + std::to_string(i) + "@c", 90,
                           /*ttl=*/i * 10),
                 i * 5);
    EXPECT_LE(cache.bytes_used(), 1000u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

}  // namespace
}  // namespace webcc::http
