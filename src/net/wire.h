// Line-based text codec for the webcc protocol.
//
// Used by the live (real-socket) prototype and by tests; the simulator only
// needs WireSize(). One message per line; fields are space-separated and
// URL/client fields are percent-escaped so they cannot contain separators.
//
//   GET <url> <client>
//   IMS <url> <client> <if_modified_since_us>
//   200 <url> <body_bytes> <last_modified_us> <version> <lease_until_us>
//   304 <url> <last_modified_us> <lease_until_us>
//   INV <url> <client>
//   INVB <client> <n> <url>*n
//   INVSRV <server>
//   NOTIFY <url>
//
// Requests and replies may carry optional piggyback sections after the
// fixed fields (the PCV/PSI schemes from the follow-on literature):
//
//   GET/IMS ...  PCV <n> (<url> <owner> <last_modified_us>)*n
//   200/304 ...  PCVINV <n> (<url> <owner>)*n  PSI <n> (<url>)*n
//
// Messages without piggyback data keep the historical fixed field counts.
//
// A 200 line is followed by exactly <body_bytes> bytes of body on the
// stream; framing of the body is the caller's job (the codec deals in
// header lines only).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "net/message.h"

namespace webcc::net {

using Message = std::variant<Request, Reply, Invalidation, BatchInvalidation,
                             Notify>;

// Encodes a message as a single newline-terminated header line.
std::string EncodeLine(const Message& message);

// Parses one header line (with or without trailing newline). Returns
// std::nullopt on malformed input.
std::optional<Message> DecodeLine(std::string_view line);

// Escaping for URL/client/server fields: '%', ' ', '\n', '\r' and other
// control bytes become %XX.
std::string EscapeField(std::string_view raw);
std::optional<std::string> UnescapeField(std::string_view escaped);

}  // namespace webcc::net
