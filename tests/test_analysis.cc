// Tests for the Section 3 analytic model (Table 1): closed forms, exact
// per-event simulations, and the properties binding them together.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "util/rng.h"

namespace webcc::core {
namespace {

// --- sequence parsing / shape -----------------------------------------------------

TEST(Sequence, ParseAssignsIncreasingTimes) {
  const auto events = ParseSequence("rmr", kMinute);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at, kMinute);
  EXPECT_TRUE(events[0].is_request);
  EXPECT_EQ(events[1].at, 2 * kMinute);
  EXPECT_FALSE(events[1].is_request);
  EXPECT_EQ(events[2].at, 3 * kMinute);
}

TEST(Sequence, ParseIgnoresWhitespace) {
  EXPECT_EQ(ParseSequence("r r m\nm r").size(), 5u);
}

TEST(Shape, PaperExample) {
  // "r r r m m m r r m r r r m m r": the paper says RI = 4.
  const auto events = ParseSequence("rrrmmmrrmrrrmmr");
  const SequenceShape shape = AnalyzeSequence(events);
  EXPECT_EQ(shape.requests, 9u);
  EXPECT_EQ(shape.modifications, 6u);
  EXPECT_EQ(shape.request_intervals, 4u);
  EXPECT_EQ(shape.closed_intervals, 3u);  // the final run is still open
}

struct ShapeCase {
  const char* name;
  const char* sequence;
  std::uint64_t requests;
  std::uint64_t intervals;
  std::uint64_t closed;
};

class ShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeTest, CountsMatch) {
  const auto& param = GetParam();
  const SequenceShape shape = AnalyzeSequence(ParseSequence(param.sequence));
  EXPECT_EQ(shape.requests, param.requests);
  EXPECT_EQ(shape.request_intervals, param.intervals);
  EXPECT_EQ(shape.closed_intervals, param.closed);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeTest,
    ::testing::Values(ShapeCase{"Empty", "", 0, 0, 0},
                      ShapeCase{"OnlyRequests", "rrrr", 4, 1, 0},
                      ShapeCase{"OnlyMods", "mmm", 0, 0, 0},
                      ShapeCase{"Alternating", "rmrmrm", 3, 3, 3},
                      ShapeCase{"ModsFirst", "mmrr", 2, 1, 0},
                      ShapeCase{"EndsWithMod", "rrm", 2, 1, 1},
                      ShapeCase{"DoubleModsBetween", "rmmr", 2, 2, 1}),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.name;
    });

// --- closed forms ---------------------------------------------------------------------

TEST(Table1, PollingCounts) {
  const SequenceShape shape =
      AnalyzeSequence(ParseSequence("rrrmmmrrmrrrmmr"));
  const MessageCounts counts = Table1Polling(shape);
  // R = 9, RI = 4: one cold GET, 8 IMS, 4 transfers, 5 304s.
  EXPECT_EQ(counts.gets, 1u);
  EXPECT_EQ(counts.ims, 8u);
  EXPECT_EQ(counts.replies_200, 4u);
  EXPECT_EQ(counts.replies_304, 5u);
  // Table 1's total control count: 2R - RI.
  EXPECT_EQ(counts.control_messages(), 2 * 9u - 4u);
}

TEST(Table1, InvalidationCounts) {
  const SequenceShape shape =
      AnalyzeSequence(ParseSequence("rrrmmmrrmrrrmmr"));
  const MessageCounts counts = Table1Invalidation(shape);
  EXPECT_EQ(counts.gets, 4u);
  EXPECT_EQ(counts.replies_200, 4u);
  EXPECT_EQ(counts.invalidations, 3u);
  EXPECT_EQ(counts.ims, 0u);
  EXPECT_EQ(counts.replies_304, 0u);
}

TEST(Table1, MinimumTraffic) {
  const SequenceShape shape = AnalyzeSequence(ParseSequence("rmrmr"));
  const MessageCounts counts = Table1Minimum(shape);
  EXPECT_EQ(counts.control_messages(), 3u);
  EXPECT_EQ(counts.file_transfers(), 3u);
}

TEST(Table1, EmptySequenceAllZero) {
  const SequenceShape shape{};
  EXPECT_EQ(Table1Polling(shape).total_messages(), 0u);
  EXPECT_EQ(Table1Invalidation(shape).total_messages(), 0u);
}

// --- exact simulations match closed forms ------------------------------------------------

std::string RandomSequence(util::Rng& rng, std::size_t length,
                           double request_probability) {
  std::string sequence;
  for (std::size_t i = 0; i < length; ++i) {
    sequence += rng.NextBool(request_probability) ? 'r' : 'm';
  }
  return sequence;
}

class RandomSequenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSequenceTest, PollingSimulationMatchesClosedForm) {
  util::Rng rng(GetParam());
  const std::string sequence = RandomSequence(rng, 200, 0.7);
  const auto events = ParseSequence(sequence);
  const MessageCounts simulated = SimulatePollingSequence(events);
  const MessageCounts closed = Table1Polling(AnalyzeSequence(events));
  EXPECT_EQ(simulated.gets, closed.gets) << sequence;
  EXPECT_EQ(simulated.ims, closed.ims) << sequence;
  EXPECT_EQ(simulated.replies_200, closed.replies_200) << sequence;
  EXPECT_EQ(simulated.replies_304, closed.replies_304) << sequence;
  EXPECT_EQ(simulated.stale_hits, 0u);
}

TEST_P(RandomSequenceTest, InvalidationSimulationMatchesClosedForm) {
  util::Rng rng(GetParam() + 1000);
  const std::string sequence = RandomSequence(rng, 200, 0.6);
  const auto events = ParseSequence(sequence);
  const MessageCounts simulated = SimulateInvalidationSequence(events);
  const MessageCounts closed = Table1Invalidation(AnalyzeSequence(events));
  EXPECT_EQ(simulated.gets, closed.gets) << sequence;
  EXPECT_EQ(simulated.replies_200, closed.replies_200) << sequence;
  EXPECT_EQ(simulated.invalidations, closed.invalidations) << sequence;
  EXPECT_EQ(simulated.stale_hits, 0u);
}

TEST_P(RandomSequenceTest, StrongSchemesTransferExactlyTheMinimum) {
  util::Rng rng(GetParam() + 2000);
  const std::string sequence = RandomSequence(rng, 300, 0.8);
  const auto events = ParseSequence(sequence);
  const SequenceShape shape = AnalyzeSequence(events);
  EXPECT_EQ(SimulatePollingSequence(events).file_transfers(),
            shape.request_intervals);
  EXPECT_EQ(SimulateInvalidationSequence(events).file_transfers(),
            shape.request_intervals);
}

TEST_P(RandomSequenceTest, InvalidationNeverExceedsTwiceMinimumControl) {
  util::Rng rng(GetParam() + 3000);
  const auto events = ParseSequence(RandomSequence(rng, 300, 0.5));
  const SequenceShape shape = AnalyzeSequence(events);
  const MessageCounts counts = SimulateInvalidationSequence(events);
  EXPECT_LE(counts.control_messages(), 2 * shape.request_intervals);
}

TEST_P(RandomSequenceTest, AdaptiveTtlTransfersAtLeastMinimumWhenNoStaleHits) {
  util::Rng rng(GetParam() + 4000);
  const auto events = ParseSequence(RandomSequence(rng, 200, 0.7), kHour);
  const SequenceShape shape = AnalyzeSequence(events);
  AdaptiveTtlConfig config;
  config.factor = 0.0;  // degenerates to validate-every-time
  config.min_ttl = 0;
  const MessageCounts counts =
      SimulateAdaptiveTtlSequence(events, config, -30 * kDay);
  // With factor 0 every hit validates: no stale hits, minimum transfers.
  EXPECT_EQ(counts.stale_hits, 0u);
  EXPECT_EQ(counts.file_transfers(), shape.request_intervals);
}

TEST_P(RandomSequenceTest, TtlSavesTransfersOnlyThroughStaleness) {
  // The paper's key observation: adaptive TTL's transfer savings relative
  // to the strong schemes are bounded by its stale serves.
  util::Rng rng(GetParam() + 5000);
  const auto events = ParseSequence(RandomSequence(rng, 300, 0.85), kHour);
  const SequenceShape shape = AnalyzeSequence(events);
  AdaptiveTtlConfig config;
  config.factor = 1.0;  // aggressive caching: many stale serves
  config.min_ttl = kMinute;
  config.max_ttl = 365 * kDay;
  const MessageCounts counts =
      SimulateAdaptiveTtlSequence(events, config, -50 * kDay);
  EXPECT_GE(counts.file_transfers() + counts.stale_hits,
            shape.request_intervals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSequenceTest, ::testing::Range(0, 25));

// --- adaptive TTL trajectory specifics ---------------------------------------------------

TEST(AdaptiveTtlSequence, ColdStartIsSingleGet) {
  const auto events = ParseSequence("r");
  AdaptiveTtlConfig config;
  const MessageCounts counts = SimulateAdaptiveTtlSequence(events, config, 0);
  EXPECT_EQ(counts.gets, 1u);
  EXPECT_EQ(counts.replies_200, 1u);
  EXPECT_EQ(counts.ims, 0u);
}

TEST(AdaptiveTtlSequence, OldDocumentServedLocallyWithinTtl) {
  AdaptiveTtlConfig config;
  config.factor = 0.5;
  config.min_ttl = 0;
  config.max_ttl = 365 * kDay;
  // Document is 100 days old: TTL ~ 50 days; hourly re-requests all hit.
  const auto events = ParseSequence("rrrrrrrr", kHour);
  const MessageCounts counts =
      SimulateAdaptiveTtlSequence(events, config, -100 * kDay);
  EXPECT_EQ(counts.gets, 1u);
  EXPECT_EQ(counts.ims, 0u);
}

TEST(AdaptiveTtlSequence, StaleHitThenEventualRefetch) {
  AdaptiveTtlConfig config;
  config.factor = 0.5;
  config.min_ttl = 0;
  config.max_ttl = 365 * kDay;
  // Fetch, modify, re-request within TTL (stale hit), re-request after TTL
  // expiry (refetch).
  std::vector<SeqEvent> events = {
      {kHour, true},            // GET; age 100d -> TTL 50d
      {2 * kHour, false},       // modification
      {3 * kHour, true},        // within TTL: stale hit
      {100 * kDay, true},       // TTL expired: IMS -> 200
  };
  const MessageCounts counts =
      SimulateAdaptiveTtlSequence(events, config, -100 * kDay);
  EXPECT_EQ(counts.stale_hits, 1u);
  EXPECT_EQ(counts.gets, 1u);
  EXPECT_EQ(counts.ims, 1u);
  EXPECT_EQ(counts.replies_200, 2u);
  EXPECT_EQ(counts.replies_304, 0u);
}

TEST(AdaptiveTtlSequence, UnmodifiedExpiryCosts304) {
  AdaptiveTtlConfig config;
  config.factor = 0.001;
  config.min_ttl = kMinute;
  config.max_ttl = kMinute;
  // TTL pinned to one minute; re-request an hour later: IMS -> 304.
  const auto events = ParseSequence("rr", kHour);
  const MessageCounts counts =
      SimulateAdaptiveTtlSequence(events, config, -kDay);
  EXPECT_EQ(counts.gets, 1u);
  EXPECT_EQ(counts.ims, 1u);
  EXPECT_EQ(counts.replies_304, 1u);
  // Control messages: 2 * TTL-misses - misses-on-changed-docs = 2*1 - 0,
  // plus the cold GET.
  EXPECT_EQ(counts.control_messages(), 3u);
}

TEST(MessageCounts, Accessors) {
  MessageCounts counts;
  counts.gets = 1;
  counts.ims = 2;
  counts.replies_200 = 3;
  counts.replies_304 = 4;
  counts.invalidations = 5;
  EXPECT_EQ(counts.control_messages(), 12u);
  EXPECT_EQ(counts.file_transfers(), 3u);
  EXPECT_EQ(counts.total_messages(), 15u);
}

}  // namespace
}  // namespace webcc::core
