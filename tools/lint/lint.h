// webcc_lint: project-specific static checks for webcc invariants.
//
// A deliberately simple line/token scanner (no LLVM dependency): each rule
// is a pattern plus a scope, tuned to this codebase. The rules encode
// invariants the compiler cannot see but the replay-determinism and
// consistency guarantees depend on:
//
//   determinism-clock       no rand()/time()/std::random_device/wall-clock
//                           reads in deterministic replay code — stochastic
//                           behavior must come from fault::Random / seeded
//                           util::Rng, and time from the simulated clock.
//                           (src/live, src/cli and src/util are exempt:
//                           the live stack runs on real wall clocks.)
//   unordered-iter-in-dump  no iteration over unordered containers inside
//                           Dump/Snapshot/Serialize/Digest/Export/ToJson/
//                           WriteJson functions — output paths must be
//                           byte-stable, so they iterate sorted containers
//                           or sort before writing.
//   raw-mutex               no raw <mutex>/<condition_variable> primitives
//                           outside util/thread_annotations.h — unannotated
//                           locks are invisible to -Wthread-safety, which
//                           silently exempts whatever they guard.
//   enum-switch-default     no `default:` in a switch over a protocol/lease
//                           enum — spell every enumerator so -Wswitch turns
//                           a forgotten case into a compile warning.
//   naked-send              no direct ::send/::recv/::write/::read syscalls
//                           outside live/socket.cc — live I/O must flow
//                           through the classified IoError path (short
//                           writes, EAGAIN resume, peer-reset vs timeout).
//   scan-prune              no iteration-erase prune loops over lease state
//                           (lease_until / LeaseActive near an iterator
//                           erase) outside core/timer_wheel.h and
//                           core/site_list.h — a full scan is O(entries)
//                           per prune; expiry must be indexed through the
//                           timer wheel so pruning stays O(expired).
//
// Suppressions: `// webcc-lint: allow(<rule>)` on the offending line or the
// line directly above silences one finding; `// webcc-lint:
// allow-file(<rule>)` anywhere in a file silences the rule file-wide. Every
// suppression should carry a justification after an em-dash or colon.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace webcc::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// All rule ids, in report order (stable; tests and CI grep these).
std::vector<std::string_view> RuleIds();

// Lints one file's contents. `path` decides rule scoping (e.g. src/live is
// exempt from determinism-clock) and is copied into findings verbatim.
std::vector<Finding> LintFile(std::string_view path, std::string_view text);

// Loads and lints every .cc/.h file under `paths` (files or directories,
// recursed in sorted order so output is deterministic). I/O errors append
// to `errors`.
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               std::vector<std::string>& errors);

// Renders findings, one per line:
//   human:  <file>:<line>: [<rule>] <message>
//   json:   {"file":"...","line":N,"rule":"...","message":"..."}
void WriteFindings(std::ostream& out, const std::vector<Finding>& findings,
                   bool json);

// Full CLI: returns the process exit code (0 = clean, 1 = findings,
// 2 = usage or I/O error). `argv` excludes the program name.
int RunLintMain(const std::vector<std::string>& argv, std::ostream& out,
                std::ostream& err);

}  // namespace webcc::lint
