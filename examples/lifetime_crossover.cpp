// Lifetime crossover: where does polling-every-time beat invalidation?
//
// Section 3's analysis says the comparison depends on the ratio of requests
// to modifications: if documents change more often than they are re-read,
// invalidation wastes a message per change; if reads dominate (the web's
// normal regime), polling wastes a validation per hit. The paper concludes
// invalidation wins "except in the extreme case of file lifetime on the
// order of minutes". This example sweeps the mean file lifetime across four
// orders of magnitude and finds the crossover empirically.
#include <cstdio>
#include <vector>

#include "replay/engine.h"
#include "stats/table.h"
#include "trace/workload.h"
#include "util/format.h"

using namespace webcc;

int main() {
  trace::WorkloadConfig workload;
  workload.name = "crossover";
  workload.duration = 6 * kHour;
  workload.total_requests = 15000;
  workload.num_documents = 300;
  workload.num_clients = 150;
  workload.revisit_probability = 0.25;  // plenty of cache hits at stake
  workload.seed = 7;
  const trace::Trace trace = trace::GenerateTrace(workload);

  std::printf("=== Sweep: mean file lifetime vs protocol traffic ===\n\n");
  stats::Table table({"Mean lifetime", "Polling msgs", "Invalidation msgs",
                      "Inval. sent", "TTL msgs", "TTL stale", "Winner"});

  const Time lifetimes[] = {2 * kMinute,  5 * kMinute,
                            10 * kMinute, 30 * kMinute, 2 * kHour,
                            8 * kHour,    2 * kDay,     10 * kDay,
                            50 * kDay};
  for (const Time lifetime : lifetimes) {
    std::vector<replay::ReplayMetrics> runs;
    for (const core::Protocol protocol :
         {core::Protocol::kPollEveryTime, core::Protocol::kInvalidation,
          core::Protocol::kAdaptiveTtl}) {
      replay::ReplayConfig config;
      config.protocol = protocol;
      config.trace = &trace;
      config.mean_lifetime = lifetime;
      runs.push_back(replay::RunReplay(config));
    }
    const auto& polling = runs[0];
    const auto& invalidation = runs[1];
    const auto& ttl = runs[2];
    table.AddRow(
        {util::HumanDuration(lifetime),
         util::WithCommas(static_cast<std::int64_t>(polling.total_messages())),
         util::WithCommas(
             static_cast<std::int64_t>(invalidation.total_messages())),
         util::WithCommas(
             static_cast<std::int64_t>(invalidation.invalidations_sent)),
         util::WithCommas(static_cast<std::int64_t>(ttl.total_messages())),
         util::WithCommas(static_cast<std::int64_t>(ttl.stale_serves)),
         polling.total_messages() < invalidation.total_messages()
             ? "polling"
             : "invalidation"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "At lifetimes of minutes, nearly every cached copy dies before its\n"
      "next use: invalidation pays for messages that save nothing, and\n"
      "polling's validations are no longer redundant. As lifetimes reach\n"
      "hours to days — the measured reality of the web — invalidation's\n"
      "traffic collapses toward the minimum while polling keeps paying per\n"
      "hit, which is the paper's argument for invalidation.\n");
  return 0;
}
